//! The metrics registry: named counters, gauges, log-linear histograms
//! and decimated time series, keyed by `(entity, metric)`.
//!
//! The simulator is single-threaded, but experiment sweeps run many
//! simulators in parallel and post-run tooling reads metrics from other
//! threads — so every instrument is shareable (`Send + Sync`) and the
//! *recording* hot path is lock-free: counters, gauges and histogram
//! buckets are plain atomics. Only instrument *registration* (the first
//! lookup of an `(entity, metric)` pair) takes a lock; hot paths resolve
//! their handles once and then never touch the registry again. Time
//! series are the one cold-path exception (an uncontended mutex,
//! amortized by stride decimation).
//!
//! Metrics are pure observation: nothing in this module feeds back into
//! simulation state, so a run with metrics attached is byte-identical to
//! the same run without (enforced by the determinism tests in
//! `kar-bench`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What a metric is about. Indexes are raw (`NodeId.0`, `LinkId.0`,
/// `FlowId.0`) so this crate stays decoupled from the simulator; a
/// [`crate::TopoLabeler`] resolves them to names at dump time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Entity {
    /// The whole simulation.
    Global,
    /// A node (switch or edge), by `NodeId` index.
    Node(u32),
    /// An undirected link, by `LinkId` index.
    Link(u32),
    /// A transport flow, by `FlowId`.
    Flow(u32),
    /// A `(src, dst)` node pair (installed routes).
    Pair(u32, u32),
}

/// A monotone event count. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicI64,
    max: AtomicI64,
}

/// A last-value instrument that also tracks its high-water mark.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    /// Sets the current value (and raises the high-water mark).
    pub fn set(&self, v: i64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjusts the current value by `d`.
    pub fn add(&self, d: i64) {
        let v = self.0.value.fetch_add(d, Ordering::Relaxed) + d;
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Largest value ever set.
    pub fn max(&self) -> i64 {
        self.0.max.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution of the log-linear histogram: each power-of-two
/// range is split into 16 linear buckets (~6% relative error).
const HIST_SUB_BITS: u32 = 4;
const HIST_SUB: u64 = 1 << HIST_SUB_BITS;
/// Values below [`HIST_SUB`] get one exact bucket each; above, each of
/// the `64 - HIST_SUB_BITS` exponent ranges contributes `HIST_SUB`
/// buckets.
const HIST_BUCKETS: usize = HIST_SUB as usize + (64 - HIST_SUB_BITS as usize) * HIST_SUB as usize;

#[derive(Debug)]
struct HistCell {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCell {
    fn default() -> Self {
        let mut buckets = Vec::with_capacity(HIST_BUCKETS);
        buckets.resize_with(HIST_BUCKETS, AtomicU64::default);
        HistCell {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-linear histogram over `u64` values (HdrHistogram-style): exact
/// below 16, then 16 linear sub-buckets per power of two — full `u64`
/// range, ~6% relative bucket width, lock-free recording.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCell>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistCell::default()))
    }
}

/// Bucket index of `v` (total order, exhaustive over `u64`).
pub fn bucket_index(v: u64) -> usize {
    if v < HIST_SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // v ∈ [2^exp, 2^(exp+1))
    let sub = (v >> (exp - HIST_SUB_BITS)) - HIST_SUB; // top bits after the leading one
    (HIST_SUB + (exp as u64 - HIST_SUB_BITS as u64) * HIST_SUB + sub) as usize
}

/// Inclusive `[lo, hi]` value range of bucket `i` (the inverse of
/// [`bucket_index`]).
pub fn bucket_range(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < HIST_SUB {
        return (i, i);
    }
    let j = i - HIST_SUB;
    let exp = HIST_SUB_BITS as u64 + j / HIST_SUB;
    let sub = j % HIST_SUB;
    let width = 1u64 << (exp - HIST_SUB_BITS as u64);
    let lo = (1u64 << exp) + sub * width;
    (lo, lo + (width - 1))
}

impl Histogram {
    /// Records one value.
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.min.fetch_min(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wraps only after 2^64).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        let m = self.0.min.load(Ordering::Relaxed);
        (self.count() > 0).then_some(m)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.0.max.load(Ordering::Relaxed))
    }

    /// Mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the lower bound of the
    /// bucket holding the `ceil(q · count)`-th value. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_range(i).0);
            }
        }
        self.max()
    }

    /// Streaming summary (count/mean/p50/p95/p99) for campaign-level
    /// reporting — everything is read off the log-linear buckets, so a
    /// million-packet run summarizes in O(buckets) with O(1) memory per
    /// metric, never a per-packet buffer.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean().unwrap_or(0.0),
            p50: self.quantile(0.50).unwrap_or(0),
            p95: self.quantile(0.95).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }

    /// Non-empty buckets as `(lower bound, count)`, in value order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_range(i).0, c))
            })
            .collect()
    }
}

/// One histogram condensed to the five numbers a sweep table reports.
/// Quantiles carry the histogram's ~6% bucket resolution; `mean` is
/// exact. All fields are 0 (not absent) for an empty histogram —
/// `count == 0` disambiguates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Values recorded.
    pub count: u64,
    /// Exact mean (0.0 when empty).
    pub mean: f64,
    /// Median (bucket lower bound).
    pub p50: u64,
    /// 95th percentile (bucket lower bound).
    pub p95: u64,
    /// 99th percentile (bucket lower bound).
    pub p99: u64,
}

/// Decimated time series: `(t_ns, value)` samples with a bounded
/// footprint. When the buffer fills, every other sample is discarded and
/// the acceptance stride doubles — a deterministic, O(1)-amortized
/// downsampler that keeps the shape of the series.
#[derive(Debug, Clone)]
pub struct Series(Arc<Mutex<SeriesInner>>);

#[derive(Debug)]
struct SeriesInner {
    samples: Vec<(u64, f64)>,
    cap: usize,
    stride: u64,
    seen: u64,
}

/// Default per-series sample budget.
pub const SERIES_CAP: usize = 2048;

impl Default for Series {
    fn default() -> Self {
        Series(Arc::new(Mutex::new(SeriesInner {
            samples: Vec::new(),
            cap: SERIES_CAP,
            stride: 1,
            seen: 0,
        })))
    }
}

impl Series {
    /// Offers one sample; accepted every `stride`-th call.
    pub fn sample(&self, t_ns: u64, value: f64) {
        let mut s = self.0.lock().expect("series lock");
        let take = s.seen.is_multiple_of(s.stride);
        s.seen += 1;
        if !take {
            return;
        }
        if s.samples.len() >= s.cap {
            let mut i = 0;
            s.samples.retain(|_| {
                i += 1;
                i % 2 == 1
            });
            s.stride *= 2;
        }
        s.samples.push((t_ns, value));
    }

    /// Snapshot of the retained samples, in time order.
    pub fn samples(&self) -> Vec<(u64, f64)> {
        self.0.lock().expect("series lock").samples.clone()
    }

    /// Total samples offered (before decimation).
    pub fn offered(&self) -> u64 {
        self.0.lock().expect("series lock").seen
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: HashMap<Entity, HashMap<String, Counter>>,
    gauges: HashMap<Entity, HashMap<String, Gauge>>,
    histograms: HashMap<Entity, HashMap<String, Histogram>>,
    series: HashMap<Entity, HashMap<String, Series>>,
}

/// The registry: hands out shared instrument handles by
/// `(entity, metric)` key. Lookups lock; recording through the returned
/// handles never does.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

macro_rules! instrument_getter {
    ($(#[$doc:meta])* $fn_name:ident, $field:ident, $ty:ty) => {
        $(#[$doc])*
        pub fn $fn_name(&self, entity: Entity, metric: &str) -> $ty {
            let mut inner = self.inner.lock().expect("registry lock");
            if let Some(found) = inner.$field.get(&entity).and_then(|m| m.get(metric)) {
                return found.clone();
            }
            let fresh = <$ty>::default();
            inner
                .$field
                .entry(entity)
                .or_default()
                .insert(metric.to_string(), fresh.clone());
            fresh
        }
    };
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    instrument_getter!(
        /// The counter for `(entity, metric)`, registering on first use.
        counter, counters, Counter);
    instrument_getter!(
        /// The gauge for `(entity, metric)`, registering on first use.
        gauge, gauges, Gauge);
    instrument_getter!(
        /// The histogram for `(entity, metric)`, registering on first use.
        histogram, histograms, Histogram);
    instrument_getter!(
        /// The time series for `(entity, metric)`, registering on first use.
        series, series, Series);

    /// Every registered instrument, read out into a plain snapshot, in
    /// deterministic `(entity, metric)` order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry lock");
        let mut snap = MetricsSnapshot::default();
        let mut counters: Vec<_> = inner
            .counters
            .iter()
            .flat_map(|(&e, m)| m.iter().map(move |(k, c)| (e, k.clone(), c.get())))
            .collect();
        counters.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        snap.counters = counters;
        let mut gauges: Vec<_> = inner
            .gauges
            .iter()
            .flat_map(|(&e, m)| m.iter().map(move |(k, g)| (e, k.clone(), g.get(), g.max())))
            .collect();
        gauges.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        snap.gauges = gauges;
        let mut hists: Vec<_> = inner
            .histograms
            .iter()
            .flat_map(|(&e, m)| {
                m.iter().map(move |(k, h)| HistSnapshot {
                    entity: e,
                    metric: k.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min().unwrap_or(0),
                    max: h.max().unwrap_or(0),
                    buckets: h.nonzero_buckets(),
                })
            })
            .collect();
        hists.sort_by(|a, b| (a.entity, &a.metric).cmp(&(b.entity, &b.metric)));
        snap.histograms = hists;
        let mut series: Vec<_> = inner
            .series
            .iter()
            .flat_map(|(&e, m)| m.iter().map(move |(k, s)| (e, k.clone(), s.samples())))
            .collect();
        series.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        snap.series = series;
        snap
    }
}

/// One histogram, read out.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// What the histogram is about.
    pub entity: Entity,
    /// Metric name.
    pub metric: String,
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Non-empty `(bucket lower bound, count)` pairs.
    pub buckets: Vec<(u64, u64)>,
}

/// One time series, read out: `(entity, metric, samples)`.
pub type SeriesSnapshot = (Entity, String, Vec<(u64, f64)>);

/// A full registry read-out in deterministic order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(entity, metric, value)` triples.
    pub counters: Vec<(Entity, String, u64)>,
    /// `(entity, metric, value, max)` tuples.
    pub gauges: Vec<(Entity, String, i64, i64)>,
    /// Histogram read-outs.
    pub histograms: Vec<HistSnapshot>,
    /// Time series read-outs.
    pub series: Vec<SeriesSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_cells() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter(Entity::Node(3), "hops");
        let c2 = reg.counter(Entity::Node(3), "hops");
        c1.inc();
        c2.add(4);
        assert_eq!(c1.get(), 5);
        let g = reg.gauge(Entity::Link(0), "queue");
        g.set(7);
        g.add(-3);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.max(), 7);
        // Different entity, same metric name: a distinct cell.
        assert_eq!(reg.counter(Entity::Node(4), "hops").get(), 0);
    }

    #[test]
    fn summary_reads_off_the_buckets() {
        let h = Histogram::default();
        assert_eq!(h.summary(), HistogramSummary::default());
        for v in 1..=100u64 {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        // Quantiles are bucket lower bounds: within one ~6% bucket.
        assert!(s.p50 >= 48 && s.p50 <= 50, "p50={}", s.p50);
        assert!(s.p95 >= 88 && s.p95 <= 95, "p95={}", s.p95);
        assert!(s.p99 >= 92 && s.p99 <= 99, "p99={}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn bucket_index_edges() {
        // Exact region: one bucket per value.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_range(0), (0, 0));
        assert_eq!(bucket_range(15), (15, 15));
        // First log-linear range [16, 32): width-1 buckets.
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(17), 17);
        assert_eq!(bucket_range(16), (16, 16));
        // Second range [32, 64): width-2 buckets.
        assert_eq!(bucket_range(bucket_index(32)), (32, 33));
        assert_eq!(bucket_index(32), bucket_index(33));
        assert_ne!(bucket_index(33), bucket_index(34));
        // Power-of-two boundaries start a fresh bucket.
        for exp in 4..64u32 {
            let v = 1u64 << exp;
            let (lo, _) = bucket_range(bucket_index(v));
            assert_eq!(lo, v, "2^{exp}");
            let (_, hi) = bucket_range(bucket_index(v - 1));
            assert_eq!(hi, v - 1, "2^{exp} - 1");
        }
        // The top of the range.
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        let (lo, hi) = bucket_range(HIST_BUCKETS - 1);
        assert_eq!(hi, u64::MAX);
        assert!(lo <= hi);
        // Total order: index is monotone in the value.
        let mut prev = 0;
        for v in [
            0u64,
            1,
            15,
            16,
            31,
            32,
            63,
            64,
            1 << 20,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            prev = i;
            let (lo, hi) = bucket_range(i);
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn histogram_zero_and_max_round_trip() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.sum(), u64::MAX); // 0 + MAX
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1].1, 1);
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.mean(), Some(50.5));
        let p50 = h.quantile(0.5).unwrap();
        // Bucket width at 48..56 is 4, so the median is approximate.
        assert!((44..=52).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(0.0), Some(1));
        let p100 = h.quantile(1.0).unwrap();
        assert!(p100 >= 96, "p100 = {p100}");
    }

    #[test]
    fn series_decimates_deterministically() {
        let s = Series::default();
        for t in 0..(SERIES_CAP as u64 * 4) {
            s.sample(t, t as f64);
        }
        let samples = s.samples();
        assert!(samples.len() <= SERIES_CAP + 1);
        assert!(samples.len() >= SERIES_CAP / 2);
        // Time order and shape preserved.
        assert!(samples.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(samples[0].0, 0);
        assert_eq!(s.offered(), SERIES_CAP as u64 * 4);
        // Deterministic: a second identical series retains identical samples.
        let s2 = Series::default();
        for t in 0..(SERIES_CAP as u64 * 4) {
            s2.sample(t, t as f64);
        }
        assert_eq!(samples, s2.samples());
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter(Entity::Node(2), "b").inc();
        reg.counter(Entity::Node(2), "a").inc();
        reg.counter(Entity::Global, "z").add(9);
        reg.histogram(Entity::Flow(1), "latency").observe(5);
        reg.gauge(Entity::Link(0), "queue").set(3);
        reg.series(Entity::Link(0), "queue").sample(10, 1.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 3);
        assert_eq!(snap.counters[0].0, Entity::Global);
        assert_eq!(snap.counters[1].1, "a");
        assert_eq!(snap.counters[2].1, "b");
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.series.len(), 1);
        assert_eq!(snap.series[0].2, vec![(10, 1.0)]);
    }
}
