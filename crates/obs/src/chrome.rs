//! Chrome trace-event exporter: any run's causal spans, loadable
//! directly into `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! The export maps the dump's event records onto the trace-event JSON
//! format (the `{"traceEvents": [...]}` flavour):
//!
//! * each **run** becomes a process (`pid`), named by its run label,
//! * each **node** becomes a thread (`tid`), with `tid 0` reserved for
//!   control-plane events (faults, detections, re-encodes),
//! * each **span** with more than one event becomes an async slice
//!   (`ph: "b"`/`"e"`) spanning first to last event,
//! * every event also emits an **instant** (`ph: "i"`) carrying kind,
//!   tag, aux, link, packet and span ids in `args`,
//! * every **parent link** becomes a flow arrow (`ph: "s"` → `"f"`)
//!   from the parent span's first event to the child event — the
//!   clickable fault → detection → re-encode → packet chain.
//!
//! Timestamps are microseconds (the format's unit), converted from the
//! dump's nanoseconds with three decimals so nothing collapses.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::dump::{escape, DumpRecord, RunDump};

/// Microsecond timestamp with sub-µs precision preserved.
fn ts_us(at_ns: u64) -> String {
    format!("{:.3}", at_ns as f64 / 1000.0)
}

fn push_obj(out: &mut String, body: &str) {
    if !out.ends_with('[') {
        out.push(',');
    }
    out.push('{');
    out.push_str(body);
    out.push('}');
}

/// Renders `dumps` as a self-contained Chrome trace-event JSON string.
pub fn trace_json(dumps: &[RunDump]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (run_idx, dump) in dumps.iter().enumerate() {
        let pid = run_idx + 1;
        push_obj(
            &mut out,
            &format!(
                "\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}",
                escape(&dump.label)
            ),
        );
        push_obj(
            &mut out,
            &format!(
                "\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"control plane\"}}"
            ),
        );

        // tid per node, first-seen order; 0 is the control plane.
        let mut tids: HashMap<&str, usize> = HashMap::new();
        let events: Vec<&DumpRecord> = dump
            .records
            .iter()
            .filter(|r| matches!(r, DumpRecord::Event { .. }))
            .collect();
        for r in &events {
            let DumpRecord::Event { node, .. } = r else {
                continue;
            };
            if !node.is_empty() && !tids.contains_key(node.as_str()) {
                let tid = tids.len() + 1;
                tids.insert(node, tid);
                push_obj(
                    &mut out,
                    &format!(
                        "\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                         \"args\":{{\"name\":\"{}\"}}",
                        escape(node)
                    ),
                );
            }
        }
        let tid_of = |node: &str| -> usize {
            if node.is_empty() {
                0
            } else {
                tids.get(node).copied().unwrap_or(0)
            }
        };

        // Span extents: (first event, last event) per span id.
        struct Extent<'a> {
            first_ns: u64,
            last_ns: u64,
            first_kind: &'a str,
            first_node: &'a str,
            pkt: Option<u64>,
            count: usize,
        }
        let mut extents: Vec<(u64, Extent)> = Vec::new();
        let mut by_span: HashMap<u64, usize> = HashMap::new();
        for r in &events {
            let DumpRecord::Event {
                at_ns,
                kind,
                pkt,
                node,
                span: Some(span),
                ..
            } = r
            else {
                continue;
            };
            match by_span.get(span) {
                Some(&i) => {
                    let e = &mut extents[i].1;
                    e.last_ns = (*at_ns).max(e.last_ns);
                    e.count += 1;
                    if e.pkt.is_none() {
                        e.pkt = *pkt;
                    }
                }
                None => {
                    by_span.insert(*span, extents.len());
                    extents.push((
                        *span,
                        Extent {
                            first_ns: *at_ns,
                            last_ns: *at_ns,
                            first_kind: kind,
                            first_node: node,
                            pkt: *pkt,
                            count: 1,
                        },
                    ));
                }
            }
        }
        for (span, e) in &extents {
            if e.count < 2 {
                continue;
            }
            let name = match e.pkt {
                Some(p) => format!("pkt {p}"),
                None => e.first_kind.to_string(),
            };
            let tid = tid_of(e.first_node);
            push_obj(
                &mut out,
                &format!(
                    "\"ph\":\"b\",\"cat\":\"span\",\"id\":{span},\"pid\":{pid},\"tid\":{tid},\
                     \"ts\":{},\"name\":\"{}\"",
                    ts_us(e.first_ns),
                    escape(&name)
                ),
            );
            push_obj(
                &mut out,
                &format!(
                    "\"ph\":\"e\",\"cat\":\"span\",\"id\":{span},\"pid\":{pid},\"tid\":{tid},\
                     \"ts\":{},\"name\":\"{}\"",
                    ts_us(e.last_ns),
                    escape(&name)
                ),
            );
        }

        // Instants + flow arrows for parent links.
        let mut arrows = 0u64;
        for r in &events {
            let DumpRecord::Event {
                at_ns,
                kind,
                pkt,
                flow,
                node,
                link,
                aux,
                tag,
                span,
                parent,
            } = r
            else {
                continue;
            };
            let tid = tid_of(node);
            let name = if tag.is_empty() {
                kind.clone()
            } else {
                format!("{kind} {tag}")
            };
            let mut args = format!("\"aux\":{aux}");
            if let Some(p) = pkt {
                let _ = write!(args, ",\"pkt\":{p}");
            }
            if let Some(f) = flow {
                let _ = write!(args, ",\"flow\":{f}");
            }
            if !link.is_empty() {
                let _ = write!(args, ",\"link\":\"{}\"", escape(link));
            }
            if let Some(s) = span {
                let _ = write!(args, ",\"span\":{s}");
            }
            if let Some(p) = parent {
                let _ = write!(args, ",\"parent\":{p}");
            }
            push_obj(
                &mut out,
                &format!(
                    "\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
                     \"name\":\"{}\",\"args\":{{{args}}}",
                    ts_us(*at_ns),
                    escape(&name)
                ),
            );
            // Flow arrow: parent span's first event → this event.
            if let Some(parent) = parent {
                if let Some(&i) = by_span.get(parent) {
                    let (_, pe) = &extents[i];
                    arrows += 1;
                    // Unique arrow id within the run; runs are separate pids.
                    let id = format!("{}.{arrows}", parent);
                    push_obj(
                        &mut out,
                        &format!(
                            "\"ph\":\"s\",\"cat\":\"cause\",\"id\":\"{id}\",\"pid\":{pid},\
                             \"tid\":{},\"ts\":{},\"name\":\"cause\"",
                            tid_of(pe.first_node),
                            ts_us(pe.first_ns)
                        ),
                    );
                    push_obj(
                        &mut out,
                        &format!(
                            "\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"cause\",\"id\":\"{id}\",\
                             \"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"cause\"",
                            ts_us(*at_ns)
                        ),
                    );
                }
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        at_ns: u64,
        kind: &str,
        node: &str,
        pkt: Option<u64>,
        span: Option<u64>,
        parent: Option<u64>,
    ) -> DumpRecord {
        DumpRecord::Event {
            at_ns,
            kind: kind.into(),
            pkt,
            flow: None,
            node: node.into(),
            link: String::new(),
            aux: 0,
            tag: String::new(),
            span,
            parent,
        }
    }

    #[test]
    fn export_links_the_causal_chain() {
        let dump = RunDump {
            label: "fig/run".into(),
            records: vec![
                ev(1_000, "fault", "", None, Some(2), None),
                ev(201_000, "detect", "SW7", None, Some(4), Some(2)),
                ev(1_201_000, "reencode", "E_1", None, Some(6), Some(4)),
                ev(1_300_000, "stamp", "E_1", Some(9), Some(19), Some(6)),
                ev(1_310_000, "hop", "SW7", Some(9), Some(19), None),
                ev(1_320_000, "deliver", "E_2", Some(9), Some(19), None),
            ],
        };
        let json = trace_json(&[dump]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
        // The run names its process; nodes name threads.
        assert!(json.contains("\"name\":\"fig/run\""));
        assert!(json.contains("\"name\":\"SW7\""));
        // The packet span (3 events) becomes an async slice.
        assert!(json.contains("\"ph\":\"b\",\"cat\":\"span\",\"id\":19"));
        assert!(json.contains("\"ph\":\"e\",\"cat\":\"span\",\"id\":19"));
        // Every parent link becomes a flow arrow pair.
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 3);
        // Balanced braces ⇒ at least structurally sound JSON.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        // Timestamps are µs with the ns digits preserved.
        assert!(json.contains("\"ts\":201.000"));
    }

    #[test]
    fn empty_dumps_export_an_empty_trace() {
        assert!(trace_json(&[]).starts_with("{\"traceEvents\":[]"));
    }
}
