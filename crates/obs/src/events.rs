//! Structured event tracing: a bounded ring of simulation events.
//!
//! Where the metrics registry aggregates, the event ring keeps the raw
//! phenomena: every packet hop, deflection, drop, fault, detection and
//! re-encode, time-stamped in simulation time. The packet id doubles as
//! a **span id** — all events of one packet's journey share it, and each
//! carries the flow id, so a post-run tool can stitch a flow's hop
//! timeline back together (`kar-inspect` does exactly that).
//!
//! The ring is bounded: when full, the oldest events are overwritten and
//! the overflow is counted, so long runs keep the *recent* window — the
//! part that explains how the run ended — at a fixed memory cost.

use std::collections::VecDeque;
use std::sync::Mutex;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A packet entered the network at an edge.
    Inject,
    /// A packet arrived at a core switch.
    Hop,
    /// A switch deflected a packet off its computed port.
    Deflect,
    /// A packet was discarded.
    Drop,
    /// A packet reached its destination edge.
    Deliver,
    /// A physical link failed.
    Fault,
    /// A physical link was repaired.
    Repair,
    /// The adjacent switches observed a link transition.
    Detect,
    /// The controller re-encoded (or reverted) a route.
    Reencode,
    /// A re-encoded (detour) route ID was stamped onto a packet at
    /// ingress — the moment a recovery becomes visible to the flow.
    Stamp,
    /// An application-level observation (see `HostCtx::observe`).
    Note,
}

impl EventKind {
    /// Stable lowercase name (used in dumps).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Inject => "inject",
            EventKind::Hop => "hop",
            EventKind::Deflect => "deflect",
            EventKind::Drop => "drop",
            EventKind::Deliver => "deliver",
            EventKind::Fault => "fault",
            EventKind::Repair => "repair",
            EventKind::Detect => "detect",
            EventKind::Reencode => "reencode",
            EventKind::Stamp => "stamp",
            EventKind::Note => "note",
        }
    }

    /// Parses a dump name back (inverse of [`EventKind::as_str`]).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "inject" => EventKind::Inject,
            "hop" => EventKind::Hop,
            "deflect" => EventKind::Deflect,
            "drop" => EventKind::Drop,
            "deliver" => EventKind::Deliver,
            "fault" => EventKind::Fault,
            "repair" => EventKind::Repair,
            "detect" => EventKind::Detect,
            "reencode" => EventKind::Reencode,
            "stamp" => EventKind::Stamp,
            "note" => EventKind::Note,
            _ => return None,
        })
    }
}

/// One simulation event. Compact by design (no allocations): numeric
/// ids plus one `aux` scalar and one static `tag`, whose meaning depends
/// on the kind (e.g. `aux` = input port for hops, `tag` = drop reason
/// for drops).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulation time in nanoseconds.
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Span id: the packet this event belongs to.
    pub pkt: Option<u64>,
    /// Flow the packet belongs to.
    pub flow: Option<u32>,
    /// Node where it happened (raw `NodeId` index).
    pub node: Option<u32>,
    /// Link involved (raw `LinkId` index).
    pub link: Option<u32>,
    /// Kind-specific scalar (port, hop count, …).
    pub aux: u64,
    /// Kind-specific label (drop reason, "down"/"up", …).
    pub tag: &'static str,
    /// Causal span this event belongs to (see [`crate::span`]).
    pub span: Option<u64>,
    /// Span that caused this one (fault → detect → re-encode → stamp).
    pub parent: Option<u64>,
}

impl Event {
    /// A blank event of `kind` at `at_ns`; fill the relevant fields.
    pub fn new(at_ns: u64, kind: EventKind) -> Self {
        Event {
            at_ns,
            kind,
            pkt: None,
            flow: None,
            node: None,
            link: None,
            aux: 0,
            tag: "",
            span: None,
            parent: None,
        }
    }
}

#[derive(Debug)]
struct RingInner {
    buf: VecDeque<Event>,
    cap: usize,
    pushed: u64,
}

/// Default event capacity (≈4 MiB of events).
pub const EVENT_RING_CAP: usize = 1 << 16;

/// The bounded event ring. Single-producer in practice (the simulator),
/// but shareable; pushes take an uncontended mutex.
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<RingInner>,
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::with_capacity(EVENT_RING_CAP)
    }
}

impl EventRing {
    /// A ring keeping at most `cap` events (minimum 1).
    pub fn with_capacity(cap: usize) -> Self {
        EventRing {
            inner: Mutex::new(RingInner {
                buf: VecDeque::new(),
                cap: cap.max(1),
                pushed: 0,
            }),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, ev: Event) {
        let mut inner = self.inner.lock().expect("event ring lock");
        if inner.buf.len() == inner.cap {
            inner.buf.pop_front();
        }
        inner.buf.push_back(ev);
        inner.pushed += 1;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .lock()
            .expect("event ring lock")
            .buf
            .iter()
            .copied()
            .collect()
    }

    /// Total events ever pushed (including evicted ones).
    pub fn pushed(&self) -> u64 {
        self.inner.lock().expect("event ring lock").pushed
    }

    /// Events evicted by the bound.
    pub fn evicted(&self) -> u64 {
        let inner = self.inner.lock().expect("event ring lock");
        inner.pushed - inner.buf.len() as u64
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("event ring lock").cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_window() {
        let ring = EventRing::with_capacity(3);
        for i in 0..5u64 {
            let mut ev = Event::new(i, EventKind::Hop);
            ev.pkt = Some(i);
            ring.push(ev);
        }
        let evs = ring.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].pkt, Some(2));
        assert_eq!(evs[2].pkt, Some(4));
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.evicted(), 2);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            EventKind::Inject,
            EventKind::Hop,
            EventKind::Deflect,
            EventKind::Drop,
            EventKind::Deliver,
            EventKind::Fault,
            EventKind::Repair,
            EventKind::Detect,
            EventKind::Reencode,
            EventKind::Stamp,
            EventKind::Note,
        ] {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("nonsense"), None);
    }
}
