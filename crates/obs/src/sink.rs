//! Process-global metrics sink, mirroring the `KAR_TELEMETRY` pattern:
//! experiment harnesses `submit` per-run dumps from worker threads as
//! runs finish, and the binary `flush`es once at exit. Disabled by
//! default — when no sink is enabled, `submit` is a no-op and run paths
//! skip metrics collection entirely (see `ObsHandle`).
//!
//! The sink owns up to two output paths: the JSON-lines metrics dump
//! (`--metrics`) and a Chrome trace-event file (`--trace`, rendered by
//! [`crate::chrome`]). Either alone enables collection; one flush
//! writes both from the same sorted dumps. It also carries the
//! requested event-ring capacity (`--events-cap`) so every run's ring
//! is sized consistently.
//!
//! Flushing sorts dumps by run label, so the file contents do not depend
//! on the completion order of parallel runs.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::chrome;
use crate::dump::RunDump;
use crate::events::EVENT_RING_CAP;

struct SinkState {
    metrics_path: Option<PathBuf>,
    trace_path: Option<PathBuf>,
    event_cap: usize,
    dumps: Vec<RunDump>,
}

impl SinkState {
    fn fresh() -> Self {
        SinkState {
            metrics_path: None,
            trace_path: None,
            event_cap: EVENT_RING_CAP,
            dumps: Vec::new(),
        }
    }
}

static SINK: Mutex<Option<SinkState>> = Mutex::new(None);

fn with_state<R>(f: impl FnOnce(&mut SinkState) -> R) -> R {
    let mut sink = SINK.lock().expect("sink lock");
    f(sink.get_or_insert_with(SinkState::fresh))
}

/// Directs the metrics dump at `path`; dumps accumulate until [`flush`].
pub fn enable(path: &Path) {
    with_state(|s| s.metrics_path = Some(path.to_path_buf()));
}

/// Directs the Chrome trace-event export at `path`. Enables collection
/// even without a metrics path.
pub fn enable_trace(path: &Path) {
    with_state(|s| s.trace_path = Some(path.to_path_buf()));
}

/// Sets the event-ring capacity runs should use (`--events-cap`).
pub fn set_event_cap(cap: usize) {
    with_state(|s| s.event_cap = cap.max(1));
}

/// The event-ring capacity runs should use (the default when no sink
/// is enabled or none was requested).
pub fn event_cap() -> usize {
    SINK.lock()
        .expect("sink lock")
        .as_ref()
        .map(|s| s.event_cap)
        .unwrap_or(EVENT_RING_CAP)
}

/// Whether a sink is currently enabled.
pub fn enabled() -> bool {
    SINK.lock().expect("sink lock").is_some()
}

/// Drops any enabled sink and its pending dumps (for tests).
pub fn disable() {
    *SINK.lock().expect("sink lock") = None;
}

/// Queues one run's dump. No-op when the sink is disabled.
pub fn submit(dump: RunDump) {
    let mut sink = SINK.lock().expect("sink lock");
    if let Some(state) = sink.as_mut() {
        state.dumps.push(dump);
    }
}

/// What [`flush`] wrote.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// The metrics dump path, when one was written.
    pub metrics: Option<PathBuf>,
    /// The Chrome trace path, when one was written.
    pub trace: Option<PathBuf>,
}

impl FlushReport {
    /// Whether nothing was written (no sink, or no paths requested).
    pub fn is_empty(&self) -> bool {
        self.metrics.is_none() && self.trace.is_none()
    }
}

/// Writes all queued dumps (sorted by run label) to every requested
/// path and disables the sink. Returns what was written.
pub fn flush() -> io::Result<FlushReport> {
    let state = SINK.lock().expect("sink lock").take();
    let Some(mut state) = state else {
        return Ok(FlushReport::default());
    };
    state.dumps.sort_by(|a, b| a.label.cmp(&b.label));
    let mut report = FlushReport::default();
    if let Some(path) = &state.metrics_path {
        let mut file = std::fs::File::create(path)?;
        for dump in &state.dumps {
            file.write_all(dump.to_lines().as_bytes())?;
        }
        file.flush()?;
        report.metrics = Some(path.clone());
    }
    if let Some(path) = &state.trace_path {
        std::fs::write(path, chrome::trace_json(&state.dumps))?;
        report.trace = Some(path.clone());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::DumpRecord;

    // One test, not several: the sink is process-global, so parallel
    // unit tests would race on it.
    #[test]
    fn sink_lifecycle_covers_metrics_trace_and_cap() {
        sink_sorts_by_label_and_disables_after_flush();
        trace_only_sink_collects_and_writes_chrome_json();
    }

    fn sink_sorts_by_label_and_disables_after_flush() {
        let path = std::env::temp_dir().join("kar_obs_sink_test.jsonl");
        enable(&path);
        assert!(enabled());
        for label in ["b/run", "a/run"] {
            submit(RunDump {
                label: label.into(),
                records: vec![DumpRecord::Counter {
                    entity: "global".into(),
                    metric: "x".into(),
                    value: 1,
                }],
            });
        }
        let report = flush().unwrap();
        assert_eq!(report.metrics, Some(path.clone()));
        assert_eq!(report.trace, None);
        assert!(!enabled());
        // Disabled sink swallows submissions; flush is a no-op.
        submit(RunDump::default());
        assert!(flush().unwrap().is_empty());
        let text = std::fs::read_to_string(&path).unwrap();
        let a = text.find("a/run").unwrap();
        let b = text.find("b/run").unwrap();
        assert!(a < b, "dumps not sorted by label");
        let _ = std::fs::remove_file(&path);
    }

    fn trace_only_sink_collects_and_writes_chrome_json() {
        let path = std::env::temp_dir().join("kar_obs_sink_test.trace.json");
        enable_trace(&path);
        assert!(enabled(), "--trace alone must enable collection");
        set_event_cap(123);
        assert_eq!(event_cap(), 123);
        submit(RunDump {
            label: "t/run".into(),
            records: Vec::new(),
        });
        let report = flush().unwrap();
        assert_eq!(report.metrics, None);
        assert_eq!(report.trace, Some(path.clone()));
        assert_eq!(event_cap(), crate::EVENT_RING_CAP, "cap resets with sink");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["), "got: {text}");
        let _ = std::fs::remove_file(&path);
    }
}
