//! Process-global metrics sink, mirroring the `KAR_TELEMETRY` pattern:
//! experiment harnesses `submit` per-run dumps from worker threads as
//! runs finish, and the binary `flush`es once at exit. Disabled by
//! default — when no sink is enabled, `submit` is a no-op and run paths
//! skip metrics collection entirely (see `ObsHandle`).
//!
//! Flushing sorts dumps by run label, so the file contents do not depend
//! on the completion order of parallel runs.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::dump::RunDump;

struct SinkState {
    path: PathBuf,
    dumps: Vec<RunDump>,
}

static SINK: Mutex<Option<SinkState>> = Mutex::new(None);

/// Directs the sink at `path`; dumps accumulate until [`flush`].
pub fn enable(path: &Path) {
    let mut sink = SINK.lock().expect("sink lock");
    *sink = Some(SinkState {
        path: path.to_path_buf(),
        dumps: Vec::new(),
    });
}

/// Whether a sink is currently enabled.
pub fn enabled() -> bool {
    SINK.lock().expect("sink lock").is_some()
}

/// Drops any enabled sink and its pending dumps (for tests).
pub fn disable() {
    *SINK.lock().expect("sink lock") = None;
}

/// Queues one run's dump. No-op when the sink is disabled.
pub fn submit(dump: RunDump) {
    let mut sink = SINK.lock().expect("sink lock");
    if let Some(state) = sink.as_mut() {
        state.dumps.push(dump);
    }
}

/// Writes all queued dumps (sorted by run label) and disables the sink.
/// Returns the path written, or `None` when no sink was enabled.
pub fn flush() -> io::Result<Option<PathBuf>> {
    let state = SINK.lock().expect("sink lock").take();
    let Some(mut state) = state else {
        return Ok(None);
    };
    state.dumps.sort_by(|a, b| a.label.cmp(&b.label));
    let mut file = std::fs::File::create(&state.path)?;
    for dump in &state.dumps {
        file.write_all(dump.to_lines().as_bytes())?;
    }
    file.flush()?;
    Ok(Some(state.path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::DumpRecord;

    #[test]
    fn sink_sorts_by_label_and_disables_after_flush() {
        let path = std::env::temp_dir().join("kar_obs_sink_test.jsonl");
        enable(&path);
        assert!(enabled());
        for label in ["b/run", "a/run"] {
            submit(RunDump {
                label: label.into(),
                records: vec![DumpRecord::Counter {
                    entity: "global".into(),
                    metric: "x".into(),
                    value: 1,
                }],
            });
        }
        let written = flush().unwrap().unwrap();
        assert_eq!(written, path);
        assert!(!enabled());
        // Disabled sink swallows submissions; flush is a no-op.
        submit(RunDump::default());
        assert_eq!(flush().unwrap(), None);
        let text = std::fs::read_to_string(&path).unwrap();
        let a = text.find("a/run").unwrap();
        let b = text.find("b/run").unwrap();
        assert!(a < b, "dumps not sorted by label");
        let _ = std::fs::remove_file(&path);
    }
}
