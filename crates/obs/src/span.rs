//! Causal span ids: fault → detection → re-encode → packet.
//!
//! Every traced [`Event`](crate::Event) can carry a `span` id and a
//! `parent` span id. Packet events share one span per packet; control
//! plane events (faults, detections, re-encodes) get fresh spans whose
//! parents stitch the causal chain the paper's resilience story is
//! about: a physical fault is *detected* after the detection delay, the
//! detection triggers a controller *re-encode*, and the re-encoded
//! route is *stamped* onto packets at ingress. Post-run tools
//! ([`chrome`](crate::chrome), [`forensics`](crate::forensics),
//! `kar-inspect`) walk the parent links to answer "why did this packet
//! take that path".
//!
//! Span ids live in two disjoint namespaces so packet spans need no
//! allocation or shared state:
//!
//! * **packet spans** are odd: `pkt_span(id) = id << 1 | 1`,
//! * **control spans** are even: allocated from a per-run counter in
//!   the [`SpanTracker`], `2, 4, 6, …`.
//!
//! The tracker is part of the [`Obs`](crate::Obs) bundle and is only
//! touched inside obs-enabled guards, so span allocation can never
//! perturb simulation state (DESIGN.md invariant 12).

use std::collections::HashMap;
use std::sync::Mutex;

/// The span id of packet `pkt` (odd namespace, pure function).
pub fn pkt_span(pkt: u64) -> u64 {
    (pkt << 1) | 1
}

/// Whether `span` is a packet span (odd) rather than a control span.
pub fn is_pkt_span(span: u64) -> bool {
    span & 1 == 1
}

#[derive(Debug, Default)]
struct SpanState {
    /// Control-span counter; the next span is `(next + 1) << 1`.
    next: u64,
    /// Per-link span of the most recent fault event.
    last_fault: HashMap<u32, u64>,
    /// Span of the most recent fault on *any* link — the default blame
    /// for anomalous packet fates with no link of their own (loops).
    last_fault_any: Option<u64>,
    /// Per-link span of the most recent detection event.
    last_detect: HashMap<u32, u64>,
}

impl SpanState {
    fn alloc(&mut self) -> u64 {
        self.next += 1;
        self.next << 1
    }
}

/// Per-run allocator and registry of control-plane spans.
///
/// Lives in the [`Obs`](crate::Obs) bundle; all methods take an
/// uncontended mutex, and none are called when observability is off.
#[derive(Debug, Default)]
pub struct SpanTracker {
    inner: Mutex<SpanState>,
}

impl SpanTracker {
    /// A fresh tracker (first control span is 2).
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a span for a fault on `link` and remembers it as the
    /// link's most recent fault.
    pub fn fault(&self, link: u32) -> u64 {
        let mut st = self.inner.lock().expect("span lock");
        let span = st.alloc();
        st.last_fault.insert(link, span);
        st.last_fault_any = Some(span);
        span
    }

    /// Allocates a span for a detection on `link`, parented to the
    /// link's most recent fault (if any), and remembers it as the
    /// link's most recent detection.
    pub fn detect(&self, link: u32) -> (u64, Option<u64>) {
        let mut st = self.inner.lock().expect("span lock");
        let parent = st.last_fault.get(&link).copied();
        let span = st.alloc();
        st.last_detect.insert(link, span);
        (span, parent)
    }

    /// Allocates a fresh control span with no registry side effects
    /// (used for re-encodes; the caller keeps the id to parent stamps).
    pub fn fresh(&self) -> u64 {
        self.inner.lock().expect("span lock").alloc()
    }

    /// The span of the most recent fault on `link`, if any.
    pub fn last_fault(&self, link: u32) -> Option<u64> {
        self.inner
            .lock()
            .expect("span lock")
            .last_fault
            .get(&link)
            .copied()
    }

    /// The span of the most recent fault on any link, if any. An
    /// anomalous drop (loop, blackhole) parents to this when it cannot
    /// name the specific link that doomed it — "the last thing that
    /// broke" is the forensically useful default blame.
    pub fn last_fault_any(&self) -> Option<u64> {
        self.inner.lock().expect("span lock").last_fault_any
    }

    /// The span of the most recent detection on `link`, if any.
    pub fn last_detect(&self, link: u32) -> Option<u64> {
        self.inner
            .lock()
            .expect("span lock")
            .last_detect
            .get(&link)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_never_collide() {
        let t = SpanTracker::new();
        for pkt in 0..100u64 {
            assert!(is_pkt_span(pkt_span(pkt)));
        }
        for _ in 0..100 {
            assert!(!is_pkt_span(t.fresh()));
        }
    }

    #[test]
    fn detect_parents_to_the_latest_fault_on_that_link() {
        let t = SpanTracker::new();
        let f3 = t.fault(3);
        let f5 = t.fault(5);
        assert_ne!(f3, f5);
        let (d3, p3) = t.detect(3);
        assert_eq!(p3, Some(f3));
        let (_, p5) = t.detect(5);
        assert_eq!(p5, Some(f5));
        assert_eq!(t.last_detect(3), Some(d3));
        assert_eq!(t.last_fault(3), Some(f3));
        // A link nobody faulted has no chain.
        let (_, p9) = t.detect(9);
        assert_eq!(p9, None);
        assert_eq!(t.last_detect(99), None);
    }

    #[test]
    fn repeated_faults_rebind_the_parent() {
        let t = SpanTracker::new();
        let _first = t.fault(1);
        let second = t.fault(1);
        let (_, parent) = t.detect(1);
        assert_eq!(parent, Some(second));
        assert_eq!(t.last_fault_any(), Some(second));
        let third = t.fault(7);
        assert_eq!(t.last_fault_any(), Some(third), "any-link blame follows");
    }
}
