//! Anomaly-triggered flight recorder.
//!
//! Aggregate metrics say *that* packets looped or vanished; the flight
//! recorder freezes *why*. When the simulator observes an anomaly — a
//! TTL-expired loop, a blackholed packet on a down port, a
//! `CorruptedResidue`, or a verifier-gate mismatch — it captures the
//! recent event window plus the **full causal chain** of the offending
//! packet (walking [`span`](crate::span) parent links back through
//! stamp → re-encode → detection → fault) into a self-contained
//! [`ForensicCapture`]. Captures ride in the normal dump
//! (`kar-inspect forensics` renders them), so a CI failure ships its
//! own black box.
//!
//! Like everything in this crate the recorder is pure observation: it
//! reads the event ring, never the simulation, and is only invoked
//! inside obs-enabled guards (DESIGN.md invariant 12).

use std::collections::BTreeSet;
use std::sync::Mutex;

use crate::dump::{DumpRecord, RunDump};
use crate::events::{Event, EventRing};
use crate::profile::fmt_ns;
use crate::span::pkt_span;

/// Max captures kept per run (the rest are counted as suppressed).
pub const FORENSIC_CAPTURE_CAP: usize = 8;
/// Max captures kept per distinct trigger (loops repeat; two suffice).
pub const FORENSIC_PER_TRIGGER_CAP: usize = 2;
/// Ring events frozen into each capture's "recent" section.
pub const FORENSIC_RECENT_WINDOW: usize = 64;

/// One frozen anomaly: the trigger, the recent event window and the
/// offending packet's causal chain.
#[derive(Debug, Clone)]
pub struct ForensicCapture {
    /// What tripped the recorder (`loop`, `blackhole`,
    /// `corrupted-residue`, `verifier-gate`).
    pub trigger: &'static str,
    /// Simulation time of the trigger in nanoseconds.
    pub at_ns: u64,
    /// The offending packet, if the trigger names one.
    pub pkt: Option<u64>,
    /// Ring evictions at capture time (non-zero ⇒ chain may be cut).
    pub evicted: u64,
    /// The last [`FORENSIC_RECENT_WINDOW`] ring events.
    pub recent: Vec<Event>,
    /// Every retained event on the packet's causal chain (transitive
    /// closure over span parents), oldest first.
    pub chain: Vec<Event>,
}

#[derive(Debug, Default)]
struct LogState {
    captures: Vec<ForensicCapture>,
    suppressed: u64,
}

/// Per-run bounded store of [`ForensicCapture`]s; part of the
/// [`Obs`](crate::Obs) bundle.
#[derive(Debug, Default)]
pub struct ForensicLog {
    inner: Mutex<LogState>,
}

impl ForensicLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Freezes a capture for `trigger` (bounds permitting) from the
    /// current contents of `ring`.
    pub fn capture(&self, trigger: &'static str, at_ns: u64, pkt: Option<u64>, ring: &EventRing) {
        let mut st = self.inner.lock().expect("forensic lock");
        let same_trigger = st.captures.iter().filter(|c| c.trigger == trigger).count();
        if st.captures.len() >= FORENSIC_CAPTURE_CAP || same_trigger >= FORENSIC_PER_TRIGGER_CAP {
            st.suppressed += 1;
            return;
        }
        let events = ring.events();
        let recent: Vec<Event> = events
            .iter()
            .rev()
            .take(FORENSIC_RECENT_WINDOW)
            .rev()
            .copied()
            .collect();
        let chain = match pkt {
            Some(p) => causal_chain(&events, pkt_span(p)),
            None => Vec::new(),
        };
        st.captures.push(ForensicCapture {
            trigger,
            at_ns,
            pkt,
            evicted: ring.evicted(),
            recent,
            chain,
        });
    }

    /// All captures, in trigger order.
    pub fn captures(&self) -> Vec<ForensicCapture> {
        self.inner.lock().expect("forensic lock").captures.clone()
    }

    /// Captures dropped by the bounds.
    pub fn suppressed(&self) -> u64 {
        self.inner.lock().expect("forensic lock").suppressed
    }
}

/// Every event whose span is in the transitive parent closure of
/// `root`, oldest first: the packet's own events plus the stamp /
/// re-encode / detection / fault control spans that led to them.
pub fn causal_chain(events: &[Event], root: u64) -> Vec<Event> {
    let mut want: BTreeSet<u64> = BTreeSet::new();
    want.insert(root);
    // Parents always point at older spans, so a bounded fixpoint over
    // the retained window terminates quickly (chains are short).
    loop {
        let before = want.len();
        for ev in events {
            if let (Some(span), Some(parent)) = (ev.span, ev.parent) {
                if want.contains(&span) {
                    want.insert(parent);
                }
            }
        }
        if want.len() == before {
            break;
        }
    }
    events
        .iter()
        .filter(|ev| ev.span.is_some_and(|s| want.contains(&s)))
        .copied()
        .collect()
}

/// One capture parsed back out of a dump.
#[derive(Debug, Clone, Default)]
pub struct CaptureView {
    /// Capture index within the run.
    pub capture: u64,
    /// Trigger name.
    pub trigger: String,
    /// Trigger time (ns).
    pub at_ns: u64,
    /// Offending packet, if any.
    pub pkt: Option<u64>,
    /// Ring evictions at capture time.
    pub evicted: u64,
    /// Suppressed-capture count for the whole run.
    pub suppressed: u64,
    /// Events in the capture: `(section, record)` where section is
    /// `"chain"` or `"recent"`.
    pub events: Vec<(String, DumpRecord)>,
}

/// Groups a run's forensic records back into [`CaptureView`]s.
pub fn captures_in(run: &RunDump) -> Vec<CaptureView> {
    let mut views: Vec<CaptureView> = Vec::new();
    for rec in &run.records {
        match rec {
            DumpRecord::Forensic {
                capture,
                trigger,
                at_ns,
                pkt,
                evicted,
                suppressed,
            } => views.push(CaptureView {
                capture: *capture,
                trigger: trigger.clone(),
                at_ns: *at_ns,
                pkt: *pkt,
                evicted: *evicted,
                suppressed: *suppressed,
                events: Vec::new(),
            }),
            DumpRecord::ForensicEvent {
                capture, section, ..
            } => {
                if let Some(v) = views.iter_mut().find(|v| v.capture == *capture) {
                    v.events.push((section.clone(), rec.clone()));
                }
            }
            _ => {}
        }
    }
    views
}

/// Renders one capture as the fault → detection → re-encode → packet
/// timeline with gap annotations (detection lag, re-encode latency,
/// packets lost in the blind window).
pub fn render_capture(v: &CaptureView) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let pkt_str = v.pkt.map(|p| format!(" pkt={p}")).unwrap_or_default();
    let _ = writeln!(
        out,
        "capture {}: trigger={}{} at {}  (ring evicted: {})",
        v.capture,
        v.trigger,
        pkt_str,
        fmt_ns(v.at_ns),
        v.evicted
    );

    let chain: Vec<&DumpRecord> = v
        .events
        .iter()
        .filter(|(s, _)| s == "chain")
        .map(|(_, r)| r)
        .collect();
    let recent: Vec<&DumpRecord> = v
        .events
        .iter()
        .filter(|(s, _)| s == "recent")
        .map(|(_, r)| r)
        .collect();

    // (at_ns, kind, pkt, node, link, tag, span, parent)
    type EvFields = (
        u64,
        String,
        Option<u64>,
        String,
        String,
        String,
        Option<u64>,
        Option<u64>,
    );
    let field = |r: &DumpRecord| -> Option<EvFields> {
        if let DumpRecord::ForensicEvent {
            at_ns,
            kind,
            pkt,
            node,
            link,
            tag,
            span,
            parent,
            ..
        } = r
        {
            Some((
                *at_ns,
                kind.clone(),
                *pkt,
                node.clone(),
                link.clone(),
                tag.clone(),
                *span,
                *parent,
            ))
        } else {
            None
        }
    };

    // Anchor times for the gap annotations.
    let time_of = |want: &str| -> Option<u64> {
        chain
            .iter()
            .filter_map(|r| field(r))
            .find(|(_, kind, ..)| kind == want)
            .map(|(at, ..)| at)
    };
    let fault_at = time_of("fault");
    let detect_at = time_of("detect");
    let reencode_at = time_of("reencode");

    if chain.is_empty() {
        let _ = writeln!(out, "  causal chain: (none — trigger names no packet)");
    } else {
        let _ = writeln!(out, "  causal chain ({} events):", chain.len());
    }
    for r in &chain {
        let Some((at, kind, pkt, node, link, tag, span, parent)) = field(r) else {
            continue;
        };
        let mut line = format!("    {:>10}  {:<8}", fmt_ns(at), kind);
        if let Some(p) = pkt {
            let _ = write!(line, " pkt {p}");
        }
        if !node.is_empty() {
            let _ = write!(line, " @{node}");
        }
        if !link.is_empty() {
            let _ = write!(line, " link {link}");
        }
        if !tag.is_empty() {
            let _ = write!(line, " [{tag}]");
        }
        match (span, parent) {
            (Some(s), Some(p)) => {
                let _ = write!(line, "  (span {s} ← {p})");
            }
            (Some(s), None) => {
                let _ = write!(line, "  (span {s})");
            }
            _ => {}
        }
        // Gap annotations on the chain's control-plane milestones.
        match kind.as_str() {
            "detect" => {
                if let Some(f) = fault_at {
                    let _ = write!(line, "   detection lag {}", fmt_ns(at.saturating_sub(f)));
                }
            }
            "reencode" => {
                if let Some(d) = detect_at {
                    let _ = write!(
                        line,
                        "   re-encode {} after detect",
                        fmt_ns(at.saturating_sub(d))
                    );
                }
            }
            "stamp" => {
                if let Some(re) = reencode_at {
                    let _ = write!(
                        line,
                        "   stamped {} after re-encode",
                        fmt_ns(at.saturating_sub(re))
                    );
                }
            }
            _ => {}
        }
        out.push_str(&line);
        out.push('\n');
    }

    // Blind window: packets dropped between the fault and its detection.
    if let (Some(f), Some(d)) = (fault_at, detect_at) {
        let lost = recent
            .iter()
            .filter_map(|r| field(r))
            .filter(|(at, kind, ..)| kind == "drop" && *at >= f && *at <= d)
            .count();
        let _ = writeln!(
            out,
            "  blind window {}: {} packet(s) dropped between fault and detection",
            fmt_ns(d.saturating_sub(f)),
            lost
        );
    }
    let _ = writeln!(out, "  recent window: {} event(s) frozen", recent.len());
    out
}

/// Renders every capture in `run` (header + one block per capture);
/// empty string when the run recorded none.
pub fn render_forensics(run: &RunDump) -> String {
    use std::fmt::Write as _;
    let views = captures_in(run);
    if views.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let suppressed = views.iter().map(|v| v.suppressed).max().unwrap_or(0);
    let _ = writeln!(
        out,
        "FORENSICS — {} capture(s), {} suppressed",
        views.len(),
        suppressed
    );
    for v in &views {
        out.push_str(&render_capture(v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventKind, EventRing};
    use crate::span::SpanTracker;

    fn ev(at: u64, kind: EventKind, span: Option<u64>, parent: Option<u64>) -> Event {
        Event {
            span,
            parent,
            ..Event::new(at, kind)
        }
    }

    #[test]
    fn chain_walks_parent_links_transitively() {
        let spans = SpanTracker::new();
        let f = spans.fault(0);
        let (d, fp) = spans.detect(0);
        assert_eq!(fp, Some(f));
        let re = spans.fresh();
        let pkt = pkt_span(7);
        let events = vec![
            ev(10, EventKind::Fault, Some(f), None),
            ev(20, EventKind::Detect, Some(d), Some(f)),
            ev(30, EventKind::Reencode, Some(re), Some(d)),
            ev(40, EventKind::Stamp, Some(pkt), Some(re)),
            ev(50, EventKind::Hop, Some(pkt), None),
            // Unrelated noise that must not appear in the chain.
            ev(45, EventKind::Hop, Some(pkt_span(8)), None),
            ev(5, EventKind::Fault, Some(spans.fault(1)), None),
        ];
        let chain = causal_chain(&events, pkt);
        let kinds: Vec<EventKind> = chain.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Fault,
                EventKind::Detect,
                EventKind::Reencode,
                EventKind::Stamp,
                EventKind::Hop,
            ]
        );
        assert_eq!(chain[0].at_ns, 10);
    }

    #[test]
    fn log_bounds_captures_and_counts_suppressed() {
        let ring = EventRing::with_capacity(16);
        ring.push(ev(1, EventKind::Drop, Some(pkt_span(1)), None));
        let log = ForensicLog::new();
        for i in 0..5 {
            log.capture("loop", i, Some(i), &ring);
        }
        assert_eq!(log.captures().len(), FORENSIC_PER_TRIGGER_CAP);
        assert_eq!(log.suppressed(), 5 - FORENSIC_PER_TRIGGER_CAP as u64);
        // A different trigger still gets its slots.
        log.capture("blackhole", 9, None, &ring);
        assert_eq!(log.captures().len(), FORENSIC_PER_TRIGGER_CAP + 1);
    }
}
