//! The Brazilian RNP national research-network backbone (Fig. 6 / Fig. 8):
//! 28 points of presence, 40 links, heterogeneous link rates.
//!
//! The paper's drawing is not machine-readable, so this module
//! *reconstructs* the topology from every constraint named in §3.2:
//!
//! * primary route SW7 (Boa Vista) → SW13 → SW41 → SW73 (São Paulo);
//! * partial-protection links SW17–SW71, SW61–SW67, SW67–SW71, SW71–SW73;
//! * on SW7–SW13 failure, SW7's only deflection alternative is SW11, and
//!   SW11 leads (deterministically, degree 2) to SW17 — "the failure
//!   causes the addition of one more hop without any packet disordering";
//! * SW13 has exactly seven neighbours {SW7, SW41, SW29, SW17, SW47,
//!   SW37, SW71}, so an SW13–SW41 failure deflects to five candidates
//!   with probability 1/5 each, two of which (SW17, SW71) are protected;
//! * on SW41–SW73 failure the candidates are SW17 and SW61 (1/2 each),
//!   both protected;
//! * the Fig. 8 redundant-path scenario: SW73–SW107–SW113 primary with
//!   the unusable parallel branch SW73–SW109–SW113, and protection
//!   SW71→SW17→SW41→SW73 forming the probabilistic "protection loop";
//! * link rates are proportional to RNP classes (we scale 10G/3G/1G down
//!   to 200/100/50 Mbit/s so simulations stay tractable; only ratios
//!   matter for the reported relative throughput drops).
//!
//! All 28 switch IDs are distinct primes (pairwise coprime), each larger
//! than its degree. Three measurement hosts attach at Boa Vista (`E_BV`),
//! São Paulo (`E_SP`) and the Fig. 8 destination SW113 (`E_113`).

use crate::builder::TopologyBuilder;
use crate::graph::{LinkParams, Topology};

/// Rate class of an RNP link (scaled-down proportions of the real rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RateClass {
    /// 10 Gbit/s class → simulated at 200 Mbit/s.
    Core,
    /// 3 Gbit/s class → simulated at 100 Mbit/s.
    Regional,
    /// 1 Gbit/s class → simulated at 50 Mbit/s.
    North,
}

impl RateClass {
    /// The scaled simulation rate in Mbit/s.
    pub fn mbps(self) -> u64 {
        match self {
            RateClass::Core => 200,
            RateClass::Regional => 100,
            RateClass::North => 50,
        }
    }

    /// Link parameters for this class (1 ms propagation — long-haul WAN).
    pub fn params(self) -> LinkParams {
        LinkParams::new(self.mbps(), 1_000)
    }
}

/// `(name, switch_id, point-of-presence label)` for the 28 PoPs.
///
/// PoP labels are illustrative (the paper's figure shows the RNP map but
/// the text only names Boa Vista = 7 and São Paulo = 73).
pub const SWITCHES: [(&str, u64, &str); 28] = [
    ("SW7", 7, "Boa Vista"),
    ("SW11", 11, "Manaus"),
    ("SW13", 13, "Brasília"),
    ("SW17", 17, "Fortaleza"),
    ("SW19", 19, "Macapá"),
    ("SW23", 23, "Belém"),
    ("SW29", 29, "São Luís"),
    ("SW31", 31, "Teresina"),
    ("SW37", 37, "Palmas"),
    ("SW41", 41, "Belo Horizonte"),
    ("SW43", 43, "Natal"),
    ("SW47", 47, "Recife"),
    ("SW53", 53, "Cuiabá"),
    ("SW59", 59, "Campo Grande"),
    ("SW61", 61, "Curitiba"),
    ("SW67", 67, "Florianópolis"),
    ("SW71", 71, "Rio de Janeiro"),
    ("SW73", 73, "São Paulo"),
    ("SW79", 79, "Porto Alegre"),
    ("SW83", 83, "Santa Maria"),
    ("SW89", 89, "Londrina"),
    ("SW97", 97, "Campinas"),
    ("SW101", 101, "São Carlos"),
    ("SW103", 103, "Juiz de Fora"),
    ("SW107", 107, "Vitória"),
    ("SW109", 109, "Niterói"),
    ("SW113", 113, "Cachoeiro"),
    ("SW127", 127, "Porto Velho"),
];

/// The 40 undirected links `(a, b, class)`, in port-assignment order.
pub const LINKS: [(&str, &str, RateClass); 40] = [
    // Northern access and the Fig. 7 primary route.
    ("SW7", "SW13", RateClass::North),
    ("SW7", "SW11", RateClass::North),
    ("SW11", "SW17", RateClass::North),
    ("SW13", "SW41", RateClass::Core),
    ("SW13", "SW29", RateClass::Regional),
    ("SW13", "SW17", RateClass::Core),
    ("SW13", "SW47", RateClass::Regional),
    ("SW13", "SW37", RateClass::Regional),
    ("SW13", "SW71", RateClass::Core),
    ("SW41", "SW73", RateClass::Core),
    ("SW41", "SW17", RateClass::Core),
    ("SW41", "SW61", RateClass::Regional),
    // The §3.2 protection links.
    ("SW17", "SW71", RateClass::Core),
    ("SW61", "SW67", RateClass::Regional),
    ("SW67", "SW71", RateClass::Regional),
    ("SW71", "SW73", RateClass::Core),
    // Fig. 8 redundant-path region around São Paulo.
    ("SW73", "SW107", RateClass::Regional),
    ("SW73", "SW109", RateClass::Regional),
    ("SW107", "SW113", RateClass::Regional),
    ("SW109", "SW113", RateClass::Regional),
    // North-east ring.
    ("SW19", "SW23", RateClass::North),
    ("SW23", "SW29", RateClass::North),
    ("SW19", "SW47", RateClass::North),
    ("SW31", "SW37", RateClass::North),
    ("SW31", "SW43", RateClass::North),
    ("SW43", "SW47", RateClass::Regional),
    // Centre-west spur.
    ("SW53", "SW59", RateClass::North),
    ("SW53", "SW61", RateClass::Regional),
    ("SW59", "SW67", RateClass::Regional),
    // Southern ring.
    ("SW79", "SW71", RateClass::Regional),
    ("SW79", "SW83", RateClass::Regional),
    ("SW83", "SW89", RateClass::Regional),
    ("SW89", "SW61", RateClass::Regional),
    ("SW89", "SW29", RateClass::North),
    // São Paulo interior chain (exits to the southern ring via SW89 so
    // no region is a dead-end pocket).
    ("SW97", "SW107", RateClass::Regional),
    ("SW97", "SW101", RateClass::Regional),
    ("SW101", "SW103", RateClass::Regional),
    ("SW103", "SW89", RateClass::Regional),
    // Western spur.
    ("SW127", "SW53", RateClass::North),
    ("SW127", "SW19", RateClass::North),
];

/// `(host, attached PoP)` measurement endpoints. `E_BH` (Belo
/// Horizonte) sources the Fig. 8 scenario: its route enters SW73 *from
/// SW41*, which is what makes SW73's deflection a SW109-or-SW71 coin and
/// lets the paper add only SW71→SW17→SW41 as protection (SW41→SW73 is
/// already on the route).
pub const HOSTS: [(&str, &str); 4] = [
    ("E_BV", "SW7"),
    ("E_SP", "SW73"),
    ("E_113", "SW113"),
    ("E_BH", "SW41"),
];

/// Fig. 7 primary route as node names (Boa Vista host → São Paulo host).
pub const FIG7_ROUTE: [&str; 6] = ["E_BV", "SW7", "SW13", "SW41", "SW73", "E_SP"];

/// Fig. 7 partial-protection segments `(from, towards)` — the paper's
/// "links SW17-SW71, SW61-SW67, SW67-SW71 and SW71-SW73 … into the route
/// ID as partial protection".
pub const FIG7_PROTECTION: [(&str, &str); 4] = [
    ("SW17", "SW71"),
    ("SW61", "SW67"),
    ("SW67", "SW71"),
    ("SW71", "SW73"),
];

/// Fig. 7 failure locations (plus the paper's no-failure baseline).
pub const FIG7_FAILURES: [(&str, &str); 3] = [("SW7", "SW13"), ("SW13", "SW41"), ("SW41", "SW73")];

/// Fig. 8 primary route (Belo Horizonte host → SW113 host, via the
/// international hub).
pub const FIG8_ROUTE: [&str; 6] = ["E_BH", "SW41", "SW73", "SW107", "SW113", "E_113"];

/// Fig. 8 protection segments: the paper adds SW71-SW17 and SW17-SW41;
/// together with the route's own SW41→SW73 hop they form the loop
/// SW73→SW71→SW17→SW41→SW73.
pub const FIG8_PROTECTION: [(&str, &str); 2] = [("SW71", "SW17"), ("SW17", "SW41")];

/// The Fig. 8 failure location.
pub const FIG8_FAILURE: (&str, &str) = ("SW73", "SW107");

/// Builds the RNP topology with class-proportional link rates.
pub fn build() -> Topology {
    let mut b = TopologyBuilder::new();
    for (name, id, _) in SWITCHES {
        b.core(name, id);
    }
    for (host, _) in HOSTS {
        b.edge(host);
    }
    for (x, y, class) in LINKS {
        b.link_names(x, y, class.params());
    }
    for (host, pop) in HOSTS {
        // Host access links are never the bottleneck.
        b.link_names(host, pop, LinkParams::new(1_000, 50));
    }
    b.build().expect("rnp28 constants are valid")
}

/// The PoP label of a switch name, if known.
pub fn pop_label(switch: &str) -> Option<&'static str> {
    SWITCHES
        .iter()
        .find(|&&(name, _, _)| name == switch)
        .map(|&(_, _, label)| label)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neighbours_of(t: &Topology, name: &str) -> Vec<String> {
        t.neighbors(t.expect(name))
            .map(|(_, _, p)| t.node(p).name.clone())
            .collect()
    }

    #[test]
    fn has_28_pops_and_40_backbone_links() {
        let t = build();
        assert_eq!(t.core_nodes().len(), 28);
        assert_eq!(t.edge_nodes().len(), 4);
        // 40 backbone links + 4 host access links.
        assert_eq!(t.link_count(), 44);
        assert!(t.is_connected());
    }

    #[test]
    fn all_ids_prime_and_exceed_degree() {
        let t = build();
        for n in t.core_nodes() {
            let id = t.switch_id(n).unwrap();
            assert!(kar_rns::is_prime(id), "{} id {id}", t.node(n).name);
            assert!(id > t.node(n).degree() as u64);
        }
        assert!(kar_rns::pairwise_coprime(&t.switch_ids()));
    }

    #[test]
    fn boa_vista_deflection_is_deterministic() {
        // §3.2: "when the link SW7-SW13 fails … the only alternative path
        // is to SW11 and, then, to SW17".
        let t = build();
        let mut n7 = neighbours_of(&t, "SW7");
        n7.sort();
        assert_eq!(n7, vec!["E_BV", "SW11", "SW13"]);
        let mut n11 = neighbours_of(&t, "SW11");
        n11.sort();
        assert_eq!(n11, vec!["SW17", "SW7"], "SW11 must be degree 2");
    }

    #[test]
    fn sw13_has_the_papers_seven_neighbours() {
        let t = build();
        let mut n = neighbours_of(&t, "SW13");
        n.sort();
        assert_eq!(
            n,
            vec!["SW17", "SW29", "SW37", "SW41", "SW47", "SW7", "SW71"]
        );
    }

    #[test]
    fn sw13_failure_deflects_five_ways_two_protected() {
        // §3.2: candidates SW29, SW17, SW47, SW37, SW71 each with p = 1/5;
        // SW17 and SW71 are on the protection path.
        let t = build();
        let cands: Vec<String> = neighbours_of(&t, "SW13")
            .into_iter()
            .filter(|n| n != "SW7" && n != "SW41")
            .collect();
        assert_eq!(cands.len(), 5);
        let protected: Vec<&str> = FIG7_PROTECTION.iter().map(|&(a, _)| a).collect();
        let covered = cands
            .iter()
            .filter(|c| protected.contains(&c.as_str()))
            .count();
        assert_eq!(covered, 2);
    }

    #[test]
    fn sw41_failure_deflects_two_ways_both_protected() {
        let t = build();
        let cands: Vec<String> = neighbours_of(&t, "SW41")
            .into_iter()
            // Input, failed port, and host ports are not candidates.
            .filter(|n| n != "SW13" && n != "SW73" && !n.starts_with("E_"))
            .collect();
        assert_eq!(cands.len(), 2);
        let protected: Vec<&str> = FIG7_PROTECTION.iter().map(|&(a, _)| a).collect();
        assert!(
            cands.iter().all(|c| protected.contains(&c.as_str())),
            "{cands:?}"
        );
    }

    #[test]
    fn fig8_deflection_after_bounce_is_even_coin() {
        // §3.2 Fig. 8: a packet arriving at SW73 from SW41 (both on the
        // first pass and on every protection lap) chooses between SW109
        // and SW71 with probability 1/2.
        let t = build();
        let cands: Vec<String> = neighbours_of(&t, "SW73")
            .into_iter()
            .filter(|n| n != "SW41" && n != "SW107" && n != "E_SP")
            .collect();
        let mut sorted = cands.clone();
        sorted.sort();
        assert_eq!(sorted, vec!["SW109", "SW71"]);
    }

    #[test]
    fn fig8_alternative_branch_exists() {
        // "there is a second path through SW109 that directly connects
        // SW73 to the destination SW113".
        let t = build();
        assert!(t
            .link_between(t.expect("SW73"), t.expect("SW109"))
            .is_some());
        assert!(t
            .link_between(t.expect("SW109"), t.expect("SW113"))
            .is_some());
        let mut n109 = neighbours_of(&t, "SW109");
        n109.sort();
        // Degree 2: a deflected packet at SW109 is forced to SW113 —
        // "If SW109 is chosen, the packet will arrive at the destination".
        assert_eq!(n109, vec!["SW113", "SW73"]);
    }

    #[test]
    fn routes_and_protection_segments_are_adjacent() {
        let t = build();
        for route in [&FIG7_ROUTE[..], &FIG8_ROUTE[..]] {
            for w in route.windows(2) {
                assert!(
                    t.port_towards(t.expect(w[0]), t.expect(w[1])).is_some(),
                    "{} must neighbour {}",
                    w[0],
                    w[1]
                );
            }
        }
        for (a, b) in FIG7_PROTECTION.iter().chain(&FIG8_PROTECTION) {
            assert!(t.port_towards(t.expect(a), t.expect(b)).is_some());
        }
        for (a, b) in FIG7_FAILURES.iter().chain([&FIG8_FAILURE]) {
            let _ = t.expect_link(a, b);
        }
    }

    #[test]
    fn primary_route_bottleneck_is_the_north_link() {
        let t = build();
        let route: Vec<_> = FIG7_ROUTE.iter().map(|n| t.expect(n)).collect();
        let links = crate::paths::links_along(&t, &route).unwrap();
        let min = links
            .iter()
            .map(|&l| t.link(l).params.rate_bps)
            .min()
            .unwrap();
        assert_eq!(
            min, 50_000_000,
            "Boa Vista access is the 50 Mbit/s bottleneck"
        );
    }

    #[test]
    fn pop_labels() {
        assert_eq!(pop_label("SW7"), Some("Boa Vista"));
        assert_eq!(pop_label("SW73"), Some("São Paulo"));
        assert_eq!(pop_label("SW999"), None);
    }
}
