//! Path computation over a [`Topology`]: BFS (hop count), Dijkstra
//! (delay-weighted), and helpers that turn node paths into the
//! `(switch_id, port)` pairs KAR encodes.

use crate::graph::{LinkId, NodeId, PortIx, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A simple path as a node sequence (first = source, last = destination).
pub type NodePath = Vec<NodeId>;

/// Shortest path by hop count (BFS). Returns `None` if unreachable.
///
/// Ties are broken deterministically by node id, so reconstructed paper
/// scenarios are stable across runs.
pub fn bfs_shortest_path(topo: &Topology, src: NodeId, dst: NodeId) -> Option<NodePath> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; topo.node_count()];
    let mut seen = vec![false; topo.node_count()];
    seen[src.0] = true;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(n) = q.pop_front() {
        let mut peers: Vec<NodeId> = topo.neighbors(n).map(|(_, _, p)| p).collect();
        peers.sort();
        for peer in peers {
            if !seen[peer.0] {
                seen[peer.0] = true;
                prev[peer.0] = Some(n);
                if peer == dst {
                    return Some(reconstruct(&prev, src, dst));
                }
                q.push_back(peer);
            }
        }
    }
    None
}

/// Shortest path by accumulated link propagation delay (Dijkstra).
/// Returns `None` if unreachable.
pub fn dijkstra_by_delay(topo: &Topology, src: NodeId, dst: NodeId) -> Option<NodePath> {
    let mut dist: Vec<u128> = vec![u128::MAX; topo.node_count()];
    let mut prev: Vec<Option<NodeId>> = vec![None; topo.node_count()];
    let mut heap = BinaryHeap::new();
    dist[src.0] = 0;
    heap.push(Reverse((0u128, src)));
    while let Some(Reverse((d, n))) = heap.pop() {
        if d > dist[n.0] {
            continue;
        }
        if n == dst {
            break;
        }
        for (_, l, peer) in topo.neighbors(n) {
            let w = topo.link(l).params.delay_ns as u128 + 1; // +1 keeps hops relevant
            let nd = d + w;
            if nd < dist[peer.0] {
                dist[peer.0] = nd;
                prev[peer.0] = Some(n);
                heap.push(Reverse((nd, peer)));
            }
        }
    }
    if dist[dst.0] == u128::MAX {
        return None;
    }
    Some(reconstruct(&prev, src, dst))
}

fn reconstruct(prev: &[Option<NodeId>], src: NodeId, dst: NodeId) -> NodePath {
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur.0].expect("reconstruction reached a node with no predecessor");
        path.push(cur);
    }
    path.reverse();
    path
}

/// Hop count of a node path (`len - 1`), `0` for trivial paths.
pub fn hop_count(path: &[NodeId]) -> usize {
    path.len().saturating_sub(1)
}

/// Converts a node path into KAR `(switch_id, output_port)` pairs for the
/// core switches along it.
///
/// Edge nodes on the path are skipped (they do not forward by residue);
/// the last node needs no output pair because it terminates the path.
///
/// # Errors
///
/// Returns [`PathError::NotAdjacent`] when two consecutive path nodes have
/// no connecting link.
pub fn switch_port_pairs(
    topo: &Topology,
    path: &[NodeId],
) -> Result<Vec<(u64, PortIx)>, PathError> {
    let mut out = Vec::new();
    for w in path.windows(2) {
        let (from, to) = (w[0], w[1]);
        let port = topo
            .port_towards(from, to)
            .ok_or(PathError::NotAdjacent { from, to })?;
        if let Some(id) = topo.switch_id(from) {
            out.push((id, port));
        }
    }
    Ok(out)
}

/// The links traversed by a node path.
///
/// # Errors
///
/// Returns [`PathError::NotAdjacent`] when two consecutive nodes have no
/// connecting link.
pub fn links_along(topo: &Topology, path: &[NodeId]) -> Result<Vec<LinkId>, PathError> {
    path.windows(2)
        .map(|w| {
            topo.link_between(w[0], w[1]).ok_or(PathError::NotAdjacent {
                from: w[0],
                to: w[1],
            })
        })
        .collect()
}

/// Errors from path helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// Two consecutive nodes of the supplied path are not adjacent.
    NotAdjacent {
        /// Path node without a link to `to`.
        from: NodeId,
        /// The unreachable next node.
        to: NodeId,
    },
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::NotAdjacent { from, to } => {
                write!(f, "path nodes {from} and {to} are not adjacent")
            }
        }
    }
}

impl std::error::Error for PathError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LinkParams;
    use crate::TopologyBuilder;

    /// S - A(7) - B(11) - D, plus a longer detour A - C(13) - E(17) - B.
    fn diamond() -> Topology {
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let a = b.core("A", 7);
        let bb = b.core("B", 11);
        let d = b.edge("D");
        let c = b.core("C", 13);
        let e = b.core("E", 17);
        b.link(s, a, LinkParams::default());
        b.link(a, bb, LinkParams::default());
        b.link(bb, d, LinkParams::default());
        b.link(a, c, LinkParams::default());
        b.link(c, e, LinkParams::default());
        b.link(e, bb, LinkParams::default());
        b.build().unwrap()
    }

    #[test]
    fn bfs_finds_shortest() {
        let t = diamond();
        let p = bfs_shortest_path(&t, t.expect("S"), t.expect("D")).unwrap();
        let names: Vec<&str> = p.iter().map(|&n| t.node(n).name.as_str()).collect();
        assert_eq!(names, vec!["S", "A", "B", "D"]);
        assert_eq!(hop_count(&p), 3);
    }

    #[test]
    fn bfs_trivial_and_unreachable() {
        let t = diamond();
        let s = t.expect("S");
        assert_eq!(bfs_shortest_path(&t, s, s), Some(vec![s]));
        let mut b = TopologyBuilder::new();
        let x = b.edge("X");
        let y = b.edge("Y");
        let t2 = b.build().unwrap();
        let _ = (x, y);
        assert_eq!(bfs_shortest_path(&t2, t2.expect("X"), t2.expect("Y")), None);
    }

    #[test]
    fn dijkstra_prefers_low_delay() {
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let a = b.core("A", 7);
        let c = b.core("C", 11);
        let d = b.edge("D");
        // Direct link is slow (10 ms), detour via C is 2×1 µs.
        b.link(s, a, LinkParams::new(100, 1));
        b.link(a, d, LinkParams::new(100, 10_000));
        b.link(a, c, LinkParams::new(100, 1));
        b.link(c, d, LinkParams::new(100, 1));
        let t = b.build().unwrap();
        let p = dijkstra_by_delay(&t, s, d).unwrap();
        let names: Vec<&str> = p.iter().map(|&n| t.node(n).name.as_str()).collect();
        assert_eq!(names, vec!["S", "A", "C", "D"]);
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let mut b = TopologyBuilder::new();
        b.edge("X");
        b.edge("Y");
        let t = b.build().unwrap();
        assert_eq!(dijkstra_by_delay(&t, t.expect("X"), t.expect("Y")), None);
    }

    #[test]
    fn pairs_skip_edges_and_use_real_ports() {
        let t = diamond();
        let p = bfs_shortest_path(&t, t.expect("S"), t.expect("D")).unwrap();
        let pairs = switch_port_pairs(&t, &p).unwrap();
        // A exits towards B via port 1 (port 0 went to S), B towards D via
        // port 1 (port 0 went to A).
        assert_eq!(pairs, vec![(7, 1), (11, 1)]);
    }

    #[test]
    fn pairs_reject_teleporting_paths() {
        let t = diamond();
        let bad = vec![t.expect("S"), t.expect("B")];
        assert!(matches!(
            switch_port_pairs(&t, &bad),
            Err(PathError::NotAdjacent { .. })
        ));
    }

    #[test]
    fn links_along_path() {
        let t = diamond();
        let p = bfs_shortest_path(&t, t.expect("S"), t.expect("D")).unwrap();
        let links = links_along(&t, &p).unwrap();
        assert_eq!(links.len(), 3);
        assert_eq!(links[1], t.expect_link("A", "B"));
    }
}
