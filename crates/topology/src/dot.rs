//! Graphviz DOT export for topologies — handy for documenting the
//! reconstructed paper networks (`dot -Tsvg`).

use crate::graph::{NodeKind, Topology};
use std::fmt::Write as _;

/// Renders the topology in Graphviz DOT format.
///
/// Core switches appear as boxes labelled with their name and switch ID,
/// edge nodes as ellipses; links are annotated with their rate in
/// Mbit/s.
///
/// # Examples
///
/// ```
/// let dot = kar_topology::to_dot(&kar_topology::topo15::build());
/// assert!(dot.starts_with("graph kar"));
/// assert!(dot.contains("SW10"));
/// ```
pub fn to_dot(topo: &Topology) -> String {
    let mut out = String::from("graph kar {\n  layout=neato;\n  overlap=false;\n");
    for (i, node) in topo.nodes().iter().enumerate() {
        match node.kind {
            NodeKind::Core { switch_id } => {
                let _ = writeln!(
                    out,
                    "  n{i} [shape=box, label=\"{}\\nid={switch_id}\"];",
                    node.name
                );
            }
            NodeKind::Edge => {
                let _ = writeln!(out, "  n{i} [shape=ellipse, label=\"{}\"];", node.name);
            }
        }
    }
    for link in topo.links() {
        let _ = writeln!(
            out,
            "  n{} -- n{} [label=\"{}M\"];",
            link.a.0,
            link.b.0,
            link.params.rate_bps / 1_000_000
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rnp28, topo15};

    #[test]
    fn topo15_exports_all_elements() {
        let topo = topo15::build();
        let dot = to_dot(&topo);
        assert!(dot.starts_with("graph kar {"));
        assert!(dot.trim_end().ends_with('}'));
        for (name, id) in topo15::SWITCHES {
            assert!(dot.contains(&format!("{name}\\nid={id}")), "{name}");
        }
        for edge in topo15::EDGES {
            assert!(dot.contains(edge));
        }
        assert_eq!(dot.matches(" -- ").count(), topo.link_count());
    }

    #[test]
    fn rnp_rates_are_annotated() {
        let dot = to_dot(&rnp28::build());
        assert!(dot.contains("[label=\"200M\"]"));
        assert!(dot.contains("[label=\"50M\"]"));
    }
}
