//! # kar-topology — network graphs for the KAR reproduction
//!
//! Topology model (nodes, ports, links with rate/delay/queue parameters),
//! path computation, generators, and faithful reconstructions of the two
//! networks evaluated in the KAR paper:
//!
//! * [`topo15`] — the 15-node experimental network of Fig. 2/3 (§3.1);
//! * [`rnp28`] — the Brazilian RNP backbone of Fig. 6/8 (§3.2), 28 PoPs
//!   and 40 links with class-proportional rates.
//!
//! Both reconstructions embed every quantitative constraint stated in the
//! paper's text (deflection fan-outs, protection coverage, Table 1 bit
//! lengths) and are verified by this crate's test suite.
//!
//! # Examples
//!
//! ```
//! use kar_topology::{topo15, paths};
//!
//! let topo = topo15::build();
//! let route = topo15::primary_route(&topo);
//! let pairs = paths::switch_port_pairs(&topo, &route)?;
//! let ids: Vec<u64> = pairs.iter().map(|&(id, _)| id).collect();
//! assert_eq!(ids, [10, 7, 13, 29]); // SW10-SW7-SW13-SW29
//! # Ok::<(), kar_topology::paths::PathError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod dot;
mod graph;

pub mod analysis;
pub mod gen;
pub mod hier;
pub mod paths;
pub mod rnp28;
pub mod sym;
pub mod topo15;

pub use builder::{TopologyBuilder, TopologyError};
pub use dot::to_dot;
pub use graph::{Link, LinkId, LinkParams, Node, NodeId, NodeKind, PortIx, Topology};
pub use hier::{DomainId, Partition, PartitionError};
