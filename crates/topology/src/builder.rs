//! Incremental construction and validation of [`Topology`] values.

use crate::graph::{Link, LinkId, LinkParams, Node, NodeId, NodeKind, Topology};
use kar_rns::{first_common_factor, pairwise_coprime};
use std::collections::HashMap;
use std::fmt;

/// Builds a [`Topology`] node by node, link by link.
///
/// Ports are numbered in link-insertion order, which makes reconstruction
/// of hand-drawn topologies deterministic. [`TopologyBuilder::build`]
/// validates the KAR invariants (pairwise-coprime switch IDs, each ID
/// larger than the switch's degree, unique names).
///
/// # Examples
///
/// ```
/// use kar_topology::{LinkParams, TopologyBuilder};
///
/// let mut b = TopologyBuilder::new();
/// let s = b.edge("S");
/// let sw4 = b.core("SW4", 4);
/// let sw7 = b.core("SW7", 7);
/// let d = b.edge("D");
/// b.link(s, sw4, LinkParams::default());
/// b.link(sw4, sw7, LinkParams::default());
/// b.link(sw7, d, LinkParams::default());
/// let topo = b.build()?;
/// assert_eq!(topo.node_count(), 4);
/// # Ok::<(), kar_topology::TopologyError>(())
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    by_name: HashMap<String, NodeId>,
    duplicate_name: Option<String>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        if self.by_name.insert(name.to_string(), id).is_some() {
            self.duplicate_name = Some(name.to_string());
        }
        self.nodes.push(Node {
            name: name.to_string(),
            kind,
            ports: Vec::new(),
        });
        id
    }

    /// Adds an edge node (host / route-ID attachment point).
    pub fn edge(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeKind::Edge)
    }

    /// Adds a core switch with the given switch ID.
    pub fn core(&mut self, name: &str, switch_id: u64) -> NodeId {
        self.add_node(name, NodeKind::Core { switch_id })
    }

    /// Connects `a` and `b` with a bidirectional link; returns its id.
    ///
    /// The new link occupies the next free port index on each endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loops are not meaningful in KAR) or if
    /// either id is out of range.
    pub fn link(&mut self, a: NodeId, b: NodeId, params: LinkParams) -> LinkId {
        assert_ne!(a, b, "self-loop on node {a}");
        let id = LinkId(self.links.len());
        let a_port = self.nodes[a.0].ports.len() as u64;
        let b_port = self.nodes[b.0].ports.len() as u64;
        self.nodes[a.0].ports.push(id);
        self.nodes[b.0].ports.push(id);
        self.links.push(Link {
            a,
            a_port,
            b,
            b_port,
            params,
        });
        id
    }

    /// Convenience: connect two nodes by name.
    ///
    /// # Panics
    ///
    /// Panics if either name was never added.
    pub fn link_names(&mut self, a: &str, b: &str, params: LinkParams) -> LinkId {
        let an = self.by_name[a];
        let bn = self.by_name[b];
        self.link(an, bn, params)
    }

    /// Validates and freezes the topology.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::DuplicateName`] — two nodes share a name;
    /// * [`TopologyError::NotCoprime`] — switch IDs share a factor;
    /// * [`TopologyError::IdTooSmallForDegree`] — a switch ID cannot
    ///   address all of its ports as residues (`id <= degree - 1` would be
    ///   enough, but we require `id > degree` so the ID can also encode a
    ///   "no valid port" residue).
    pub fn build(self) -> Result<Topology, TopologyError> {
        if let Some(name) = self.duplicate_name {
            return Err(TopologyError::DuplicateName { name });
        }
        let ids: Vec<u64> = self
            .nodes
            .iter()
            .filter_map(|n| n.kind.switch_id())
            .collect();
        if !pairwise_coprime(&ids) {
            let (i, j, g) = first_common_factor(&ids)
                .map(|(i, j, g)| (ids[i], ids[j], g))
                .unwrap_or_else(|| {
                    let bad = *ids.iter().find(|&&x| x < 2).expect("some id below 2");
                    (bad, bad, bad)
                });
            return Err(TopologyError::NotCoprime {
                a: i,
                b: j,
                factor: g,
            });
        }
        for node in &self.nodes {
            if let NodeKind::Core { switch_id } = node.kind {
                if switch_id <= node.ports.len() as u64 {
                    return Err(TopologyError::IdTooSmallForDegree {
                        name: node.name.clone(),
                        switch_id,
                        degree: node.ports.len(),
                    });
                }
            }
        }
        Ok(Topology {
            nodes: self.nodes,
            links: self.links,
            by_name: self.by_name,
        })
    }
}

/// Validation errors from [`TopologyBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Two nodes share the same name.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// Two switch IDs share a common factor (or an ID is below 2).
    NotCoprime {
        /// First offending ID.
        a: u64,
        /// Second offending ID.
        b: u64,
        /// Shared factor.
        factor: u64,
    },
    /// A switch ID is too small to address all ports of the switch.
    IdTooSmallForDegree {
        /// Switch name.
        name: String,
        /// Its ID.
        switch_id: u64,
        /// Its degree (port count).
        degree: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateName { name } => write!(f, "duplicate node name {name:?}"),
            TopologyError::NotCoprime { a, b, factor } => {
                write!(f, "switch ids {a} and {b} share factor {factor}")
            }
            TopologyError::IdTooSmallForDegree {
                name,
                switch_id,
                degree,
            } => write!(
                f,
                "switch {name} has id {switch_id} but degree {degree}; ports are residues, so the id must exceed the degree"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicate_names() {
        let mut b = TopologyBuilder::new();
        b.edge("X");
        b.core("X", 7);
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::DuplicateName { name: "X".into() }
        );
    }

    #[test]
    fn rejects_non_coprime_ids() {
        let mut b = TopologyBuilder::new();
        b.core("A", 6);
        b.core("B", 9);
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::NotCoprime {
                a: 6,
                b: 9,
                factor: 3
            }
        );
    }

    #[test]
    fn rejects_id_not_exceeding_degree() {
        let mut b = TopologyBuilder::new();
        let hub = b.core("HUB", 3);
        let x = b.core("X", 5);
        let y = b.core("Y", 7);
        let z = b.core("Z", 11);
        b.link(hub, x, LinkParams::default());
        b.link(hub, y, LinkParams::default());
        b.link(hub, z, LinkParams::default());
        match b.build().unwrap_err() {
            TopologyError::IdTooSmallForDegree {
                name,
                switch_id,
                degree,
            } => {
                assert_eq!(name, "HUB");
                assert_eq!(switch_id, 3);
                assert_eq!(degree, 3);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut b = TopologyBuilder::new();
        let a = b.core("A", 7);
        b.link(a, a, LinkParams::default());
    }

    #[test]
    fn link_names_connects() {
        let mut b = TopologyBuilder::new();
        b.core("A", 7);
        b.core("B", 11);
        b.link_names("A", "B", LinkParams::default());
        let t = b.build().unwrap();
        assert!(t.link_between(t.expect("A"), t.expect("B")).is_some());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = TopologyError::IdTooSmallForDegree {
            name: "SW4".into(),
            switch_id: 4,
            degree: 5,
        };
        assert!(e.to_string().contains("must exceed the degree"));
    }
}
