//! Structural graph analysis: edge betweenness centrality.
//!
//! The adversarial failure campaigns (`kar_bench::experiments::
//! adversary`) attack links in descending betweenness order — the
//! classic "cut where the shortest paths concentrate" strategy — and
//! compare against random campaigns of matched intensity. This module
//! provides the ranking: Brandes' single-source accumulation algorithm
//! ("A faster algorithm for betweenness centrality", J. Math. Sociol.
//! 2001) specialized to unweighted graphs, O(V·E) per topology.

use crate::graph::{LinkId, NodeId, NodeKind, Topology};
use std::collections::VecDeque;

/// Betweenness centrality of every link, indexed by `LinkId`.
///
/// `result[l]` is the sum over all ordered node pairs `(s, t)` of the
/// fraction of shortest `s → t` paths that traverse link `l`, halved so
/// each unordered pair counts once (the conventional undirected
/// normalization). Every node — edge hosts included — acts as a source
/// and sink, matching how traffic actually enters the network.
///
/// Deterministic: pure function of the topology, no RNG.
pub fn edge_betweenness(topo: &Topology) -> Vec<f64> {
    let n = topo.node_count();
    let mut centrality = vec![0.0f64; topo.link_count()];
    // Brandes, one BFS per source: sigma counts shortest paths, the
    // stack records a reverse-topological order of the BFS dag, and the
    // dependency accumulation walks it backwards.
    let mut dist = vec![usize::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<(NodeId, LinkId)>> = vec![Vec::new(); n];
    for s in 0..n {
        for v in 0..n {
            dist[v] = usize::MAX;
            sigma[v] = 0.0;
            delta[v] = 0.0;
            preds[v].clear();
        }
        dist[s] = 0;
        sigma[s] = 1.0;
        let mut stack: Vec<NodeId> = Vec::with_capacity(n);
        let mut queue = VecDeque::new();
        queue.push_back(NodeId(s));
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for (_, link, w) in topo.neighbors(v) {
                if dist[w.0] == usize::MAX {
                    dist[w.0] = dist[v.0] + 1;
                    queue.push_back(w);
                }
                if dist[w.0] == dist[v.0] + 1 {
                    sigma[w.0] += sigma[v.0];
                    preds[w.0].push((v, link));
                }
            }
        }
        for &w in stack.iter().rev() {
            let coeff = (1.0 + delta[w.0]) / sigma[w.0];
            for &(v, link) in &preds[w.0] {
                let c = sigma[v.0] * coeff;
                centrality[link.0] += c;
                delta[v.0] += c;
            }
        }
    }
    // Each unordered pair was visited from both endpoints.
    for c in &mut centrality {
        *c *= 0.5;
    }
    centrality
}

/// `true` when both endpoints of `l` are core switches.
fn is_core_core(topo: &Topology, l: LinkId) -> bool {
    let link = topo.link(l);
    let core = |n: NodeId| matches!(topo.node(n).kind, NodeKind::Core { .. });
    core(link.a) && core(link.b)
}

/// Core–core links in descending [`edge_betweenness`] order — the
/// targeted-attack schedule. Host attachment links are excluded (an
/// attacker cutting those trivially disconnects one host without
/// stressing routing). Ties break on ascending `LinkId`, so the ranking
/// is fully deterministic.
pub fn ranked_links(topo: &Topology) -> Vec<LinkId> {
    let bc = edge_betweenness(topo);
    let mut links: Vec<LinkId> = (0..topo.link_count())
        .map(LinkId)
        .filter(|&l| is_core_core(topo, l))
        .collect();
    links.sort_by(|&a, &b| {
        bc[b.0]
            .partial_cmp(&bc[a.0])
            .expect("betweenness is finite")
            .then(a.0.cmp(&b.0))
    });
    links
}

/// Core switches in descending order of summed incident-link
/// betweenness — the Byzantine-placement schedule (compromising the
/// switch the most shortest paths flow through does the most damage).
/// Ties break on ascending `NodeId`.
pub fn ranked_core_switches(topo: &Topology) -> Vec<NodeId> {
    let bc = edge_betweenness(topo);
    let mut nodes = topo.core_nodes();
    let load = |n: NodeId| -> f64 { topo.node(n).ports.iter().map(|&l| bc[l.0]).sum() };
    nodes.sort_by(|&a, &b| {
        load(b)
            .partial_cmp(&load(a))
            .expect("betweenness is finite")
            .then(a.0.cmp(&b.0))
    });
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;
    use crate::graph::LinkParams;

    /// Two 3-cliques joined by one bridge: the bridge must dominate.
    fn barbell() -> (Topology, LinkId) {
        let mut b = TopologyBuilder::new();
        let left: Vec<_> = [5u64, 7, 11]
            .iter()
            .enumerate()
            .map(|(i, &id)| b.core(&format!("L{i}"), id))
            .collect();
        let right: Vec<_> = [13u64, 17, 19]
            .iter()
            .enumerate()
            .map(|(i, &id)| b.core(&format!("R{i}"), id))
            .collect();
        for v in [&left, &right] {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    b.link(v[i], v[j], LinkParams::default());
                }
            }
        }
        let bridge = b.link(left[0], right[0], LinkParams::default());
        (b.build().unwrap(), bridge)
    }

    #[test]
    fn bridge_dominates_a_barbell() {
        let (topo, bridge) = barbell();
        let bc = edge_betweenness(&topo);
        for l in 0..topo.link_count() {
            if l != bridge.0 {
                assert!(
                    bc[bridge.0] > bc[l],
                    "bridge {} must beat link {l} ({} vs {})",
                    bridge.0,
                    bc[bridge.0],
                    bc[l]
                );
            }
        }
        assert_eq!(ranked_links(&topo)[0], bridge);
        // The bridge endpoints carry the most load.
        let ranked = ranked_core_switches(&topo);
        let names: Vec<_> = ranked[..2]
            .iter()
            .map(|&n| topo.node(n).name.as_str())
            .collect();
        assert!(names.contains(&"L0") && names.contains(&"R0"), "{names:?}");
    }

    /// On a path graph A–B–C–D the exact pair counts are known:
    /// middle link sees 2·2 = 4 pairs, outer links 1·3 = 3.
    #[test]
    fn path_graph_matches_hand_count() {
        let mut b = TopologyBuilder::new();
        let ids = [3u64, 5, 7, 11];
        let nodes: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| b.core(&format!("N{i}"), id))
            .collect();
        let mut links = Vec::new();
        for w in nodes.windows(2) {
            links.push(b.link(w[0], w[1], LinkParams::default()));
        }
        let topo = b.build().unwrap();
        let bc = edge_betweenness(&topo);
        assert_eq!(bc[links[0].0], 3.0);
        assert_eq!(bc[links[1].0], 4.0);
        assert_eq!(bc[links[2].0], 3.0);
    }

    /// Every link of a symmetric ring carries the same load, so the
    /// ranking falls back to ascending LinkId — pinned determinism.
    #[test]
    fn symmetric_ring_ties_break_on_link_id() {
        let mut b = TopologyBuilder::new();
        let ids = [3u64, 5, 7, 11, 13];
        let nodes: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| b.core(&format!("N{i}"), id))
            .collect();
        for i in 0..nodes.len() {
            b.link(
                nodes[i],
                nodes[(i + 1) % nodes.len()],
                LinkParams::default(),
            );
        }
        let topo = b.build().unwrap();
        let bc = edge_betweenness(&topo);
        for l in 1..topo.link_count() {
            assert!((bc[l] - bc[0]).abs() < 1e-9);
        }
        let ranked = ranked_links(&topo);
        assert_eq!(
            ranked,
            (0..topo.link_count()).map(LinkId).collect::<Vec<_>>()
        );
    }

    /// Host attachment links never appear in the attack ranking.
    #[test]
    fn ranked_links_are_core_core_only_on_rnp28() {
        let topo = crate::rnp28::build();
        let ranked = ranked_links(&topo);
        assert!(!ranked.is_empty());
        for &l in &ranked {
            let link = topo.link(l);
            assert!(
                topo.switch_id(link.a).is_some() && topo.switch_id(link.b).is_some(),
                "host link {l:?} leaked into the ranking"
            );
        }
        // Purity: same topology, same ranking.
        assert_eq!(ranked, ranked_links(&topo));
        // The top-ranked switch is a real PoP with degree > 1.
        let top = ranked_core_switches(&topo)[0];
        assert!(topo.node(top).degree() > 1);
    }
}
