//! Structural graph automorphisms, for symmetry reduction.
//!
//! Generated topology families are highly symmetric: a ring has the
//! dihedral group (rotations and reflections), a grid its rectangle
//! symmetries. [`Symmetry`] computes the *structural* automorphisms —
//! bijections of the nodes preserving the edge/core partition and
//! adjacency — by backtracking over degree-refined candidate classes.
//!
//! What a structural automorphism does and does not preserve matters
//! for verification:
//!
//! * **Preserved**: connectivity, cuts, distances, SRLG structure —
//!   anything defined by the unlabeled graph. A k-failure sweep can
//!   share *disconnection* verdicts across the orbit of
//!   `(src, dst, failure set)`.
//! * **Not preserved**: KAR forwarding itself. Residues depend on
//!   switch IDs and port numbering, which distinct-coprime-ID
//!   assignment breaks on purpose ([`Symmetry::respecting_ids`] is the
//!   stricter group that also fixes IDs — with distinct IDs it is the
//!   trivial group, which [`Symmetry::is_trivial`] reports so callers
//!   skip canonicalization entirely on asymmetric inputs).
//!
//! The search is capped ([`MAX_PERMS`], [`MAX_STEPS`]) because a valid
//! *subset* of the automorphism group is still sound for orbit sharing
//! — it just merges fewer orbits. The identity is always included.

use crate::graph::{LinkId, NodeId, Topology};
use std::collections::HashMap;

/// Keep at most this many automorphisms (a subgroup sample is sound).
pub const MAX_PERMS: usize = 1024;
/// Abandon the backtracking search after this many extension steps.
pub const MAX_STEPS: usize = 500_000;

/// A set of structural automorphisms of one topology (always contains
/// the identity; possibly a strict subset of the full group when the
/// search caps fire).
#[derive(Debug, Clone)]
pub struct Symmetry {
    /// `perms[p][n]` is the image of node `n` under permutation `p`.
    perms: Vec<Vec<NodeId>>,
}

/// Invariant signature used to seed candidate classes: core-ness,
/// degree, optionally the switch ID, refined once by the sorted
/// neighbour signatures (one Weisfeiler-Leman round — plenty for the
/// sizes verified here).
fn signatures(topo: &Topology, respect_ids: bool) -> Vec<u64> {
    let n = topo.node_count();
    let base: Vec<(bool, usize, u64)> = (0..n)
        .map(|i| {
            let node = NodeId(i);
            let id = if respect_ids {
                topo.switch_id(node).unwrap_or(0)
            } else {
                0
            };
            (
                topo.switch_id(node).is_some(),
                topo.node(node).ports.len(),
                id,
            )
        })
        .collect();
    let mut interned: HashMap<Vec<u8>, u64> = HashMap::new();
    (0..n)
        .map(|i| {
            let mut neigh: Vec<(bool, usize, u64)> = topo
                .neighbors(NodeId(i))
                .map(|(_, _, peer)| base[peer.0])
                .collect();
            neigh.sort_unstable();
            let mut key = format!("{:?}|{:?}", base[i], neigh).into_bytes();
            let next = interned.len() as u64;
            *interned.entry(std::mem::take(&mut key)).or_insert(next)
        })
        .collect()
}

fn search(topo: &Topology, respect_ids: bool) -> Vec<Vec<NodeId>> {
    let n = topo.node_count();
    let sig = signatures(topo, respect_ids);
    let mut adj = vec![false; n * n];
    for l in 0..topo.link_count() {
        let link = topo.link(LinkId(l));
        adj[link.a.0 * n + link.b.0] = true;
        adj[link.b.0 * n + link.a.0] = true;
    }
    // Most-constrained-first assignment order: smallest candidate class.
    let class_size = |i: usize| sig.iter().filter(|&&s| s == sig[i]).count();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (class_size(i), i));

    let mut perms: Vec<Vec<NodeId>> = vec![(0..n).map(NodeId).collect()]; // identity
    let mut image = vec![usize::MAX; n];
    let mut used = vec![false; n];
    let mut steps = 0usize;
    // Iterative backtracking: stack of (depth, candidate chosen).
    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn extend(
        depth: usize,
        order: &[usize],
        sig: &[u64],
        adj: &[bool],
        n: usize,
        image: &mut [usize],
        used: &mut [bool],
        perms: &mut Vec<Vec<NodeId>>,
        steps: &mut usize,
    ) {
        if perms.len() >= MAX_PERMS || *steps >= MAX_STEPS {
            return;
        }
        if depth == n {
            let perm: Vec<NodeId> = image.iter().map(|&i| NodeId(i)).collect();
            if !perms.contains(&perm) {
                perms.push(perm);
            }
            return;
        }
        let v = order[depth];
        for cand in 0..n {
            if used[cand] || sig[cand] != sig[v] {
                continue;
            }
            *steps += 1;
            if *steps >= MAX_STEPS {
                return;
            }
            // Adjacency to every already-assigned node must be
            // mirrored exactly (degrees are equal by signature, so
            // forward preservation at full depth is a bijection on
            // edges and non-adjacency follows).
            let ok = order[..depth]
                .iter()
                .all(|&w| adj[v * n + w] == adj[cand * n + image[w]]);
            if !ok {
                continue;
            }
            image[v] = cand;
            used[cand] = true;
            extend(depth + 1, order, sig, adj, n, image, used, perms, steps);
            image[v] = usize::MAX;
            used[cand] = false;
        }
    }
    extend(
        0, &order, &sig, &adj, n, &mut image, &mut used, &mut perms, &mut steps,
    );
    perms
}

impl Symmetry {
    /// Structural automorphisms: preserve the edge/core partition,
    /// degrees and adjacency, ignore switch IDs.
    pub fn of(topo: &Topology) -> Symmetry {
        Symmetry {
            perms: search(topo, false),
        }
    }

    /// Automorphisms that additionally fix every switch ID — the group
    /// under which KAR *forwarding* (not just connectivity) could be
    /// shared. With distinct coprime IDs this is the trivial group.
    pub fn respecting_ids(topo: &Topology) -> Symmetry {
        Symmetry {
            perms: search(topo, true),
        }
    }

    /// Number of automorphisms found (≥ 1; the identity is always in).
    pub fn order(&self) -> usize {
        self.perms.len()
    }

    /// `true` when only the identity was found — canonicalization would
    /// be a no-op and callers should skip it.
    pub fn is_trivial(&self) -> bool {
        self.perms.len() == 1
    }

    /// Image of `node` under permutation `p`.
    pub fn map_node(&self, p: usize, node: NodeId) -> NodeId {
        self.perms[p][node.0]
    }

    /// Image of `link` under permutation `p` (automorphisms map links
    /// to links).
    pub fn map_link(&self, topo: &Topology, p: usize, link: LinkId) -> LinkId {
        let l = topo.link(link);
        topo.link_between(self.map_node(p, l.a), self.map_node(p, l.b))
            .expect("an automorphism maps links to links")
    }

    /// Canonical representative of the orbit of `(src, dst, failed)`:
    /// the lexicographic minimum over all images. Two cases with the
    /// same canonical form have identical *graph-level* properties
    /// (connectivity, cuts) — not identical KAR outcomes.
    pub fn canonical_case(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        failed: &[LinkId],
    ) -> (NodeId, NodeId, Vec<LinkId>) {
        let mut best: Option<(NodeId, NodeId, Vec<LinkId>)> = None;
        for p in 0..self.perms.len() {
            let mut links: Vec<LinkId> =
                failed.iter().map(|&l| self.map_link(topo, p, l)).collect();
            links.sort_unstable();
            let cand = (self.map_node(p, src), self.map_node(p, dst), links);
            if best.as_ref().is_none_or(|b| cand < *b) {
                best = Some(cand);
            }
        }
        best.expect("at least the identity permutation exists")
    }

    /// Partition of the links into orbits under this set of
    /// automorphisms (a ring's core links form one orbit; its host
    /// uplinks another).
    pub fn link_orbits(&self, topo: &Topology) -> Vec<Vec<LinkId>> {
        let mut seen = vec![false; topo.link_count()];
        let mut orbits = Vec::new();
        for l in 0..topo.link_count() {
            if seen[l] {
                continue;
            }
            let mut orbit = Vec::new();
            for p in 0..self.perms.len() {
                let img = self.map_link(topo, p, LinkId(l));
                if !seen[img.0] {
                    seen[img.0] = true;
                    orbit.push(img);
                }
            }
            orbit.sort_unstable();
            orbits.push(orbit);
        }
        orbits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::graph::LinkParams;
    use kar_rns::IdStrategy;

    #[test]
    fn ring_has_the_dihedral_group() {
        let topo = gen::ring(6, IdStrategy::SmallestPrimes, LinkParams::default());
        let sym = Symmetry::of(&topo);
        // D6 on the cores, hosts forced to follow their switch.
        assert_eq!(sym.order(), 12);
        assert!(!sym.is_trivial());
        // Every permutation maps cores to cores and preserves adjacency
        // (checked implicitly by map_link not panicking on every link).
        for p in 0..sym.order() {
            for l in 0..topo.link_count() {
                sym.map_link(&topo, p, LinkId(l));
            }
        }
        // The core ring is one link orbit, the host uplinks another.
        let orbits = sym.link_orbits(&topo);
        assert_eq!(orbits.len(), 2, "{orbits:?}");
        let mut sizes: Vec<usize> = orbits.iter().map(|o| o.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![6, 6]);
    }

    #[test]
    fn grid_has_the_rectangle_group() {
        let topo = gen::grid(2, 3, IdStrategy::SmallestPrimes, LinkParams::default());
        let sym = Symmetry::of(&topo);
        // 2×3 rectangle: horizontal flip, vertical flip, rotation, id.
        assert_eq!(sym.order(), 4);
    }

    #[test]
    fn distinct_ids_kill_the_id_respecting_group() {
        let topo = gen::ring(6, IdStrategy::SmallestPrimes, LinkParams::default());
        let sym = Symmetry::respecting_ids(&topo);
        assert!(sym.is_trivial(), "order {}", sym.order());
    }

    #[test]
    fn canonical_case_is_orbit_invariant_on_the_ring() {
        let topo = gen::ring(8, IdStrategy::SmallestPrimes, LinkParams::default());
        let sym = Symmetry::of(&topo);
        assert_eq!(sym.order(), 16);
        // Rotating a (src, dst, failure) case by any automorphism must
        // not change its canonical form.
        let edges = topo.edge_nodes();
        let (src, dst) = (edges[0], edges[3]);
        let failed = vec![LinkId(0), LinkId(5)];
        let canon = sym.canonical_case(&topo, src, dst, &failed);
        for p in 0..sym.order() {
            let rs = sym.map_node(p, src);
            let rd = sym.map_node(p, dst);
            let rf: Vec<LinkId> = failed.iter().map(|&l| sym.map_link(&topo, p, l)).collect();
            assert_eq!(sym.canonical_case(&topo, rs, rd, &rf), canon, "perm {p}");
        }
    }

    #[test]
    fn line_ends_mirror() {
        let topo = gen::line(4, IdStrategy::SmallestPrimes, LinkParams::default());
        let sym = Symmetry::of(&topo);
        // A path graph has exactly the end-to-end reflection.
        assert_eq!(sym.order(), 2);
    }
}
