//! Two-level domain partitioning for hierarchical KAR.
//!
//! Flat KAR encodes one route ID over *every* core switch on the path,
//! so the ID's bit length grows with path length — the scaling ceiling
//! `BENCH_scale.json` charts (a ring/256 already needs 1265-bit IDs).
//! Hierarchical KAR splits the topology into **domains**: a route is a
//! chain of per-domain segments, each encoded over only that domain's
//! coprime set, and the packet is re-encoded when it crosses a
//! **boundary link** into the next domain. Route-ID size is then
//! bounded by the longest intra-domain path, a per-domain constant.
//!
//! This module owns the partitioning side: [`Partition`] assigns every
//! node to exactly one [`DomainId`], knows the boundary-link set, and
//! can [`validate`](Partition::validate) the three invariants the
//! encoder relies on (total assignment, symmetric boundary, connected
//! domains). Topology-aware constructors exist for the generator
//! families ([`ring`](Partition::ring) arcs, [`grid`](Partition::grid)
//! column bands, [`fat_tree`](Partition::fat_tree) pods) plus a
//! generic BFS-balanced region growing fallback
//! ([`bfs_balanced`](Partition::bfs_balanced)) for arbitrary graphs.

use crate::graph::{LinkId, NodeId, NodeKind, Topology};
use std::collections::VecDeque;
use std::fmt;

/// Index of a domain in a [`Partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub usize);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Why a partition could not be built or failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// Asked for more domains than there are core switches.
    TooManyDomains {
        /// Requested domain count.
        domains: usize,
        /// Core switches available.
        cores: usize,
    },
    /// A node name did not match the pattern the partitioner expected
    /// (e.g. `C{r}_{c}` for grids, `agg{pod}_{i}` for fat-trees).
    NameParse {
        /// The offending node name.
        name: String,
    },
    /// The topology is not the shape the partitioner requires (e.g.
    /// [`Partition::ring`] on a non-cycle core graph).
    WrongShape {
        /// What the partitioner expected to find.
        expected: &'static str,
    },
    /// A domain ended up with no core switches.
    EmptyDomain {
        /// The empty domain.
        domain: DomainId,
    },
    /// A domain's induced core subgraph is not connected, so an
    /// intra-domain segment could not be routed without leaving it.
    DisconnectedDomain {
        /// The disconnected domain.
        domain: DomainId,
    },
    /// The recorded boundary set disagrees with the domain assignment.
    BoundaryMismatch {
        /// The link present in exactly one of the two sets.
        link: LinkId,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::TooManyDomains { domains, cores } => {
                write!(
                    f,
                    "cannot split {cores} core switches into {domains} domains"
                )
            }
            PartitionError::NameParse { name } => {
                write!(f, "node name {name:?} does not match the expected pattern")
            }
            PartitionError::WrongShape { expected } => {
                write!(f, "topology is not {expected}")
            }
            PartitionError::EmptyDomain { domain } => {
                write!(f, "domain {domain} has no core switches")
            }
            PartitionError::DisconnectedDomain { domain } => {
                write!(f, "domain {domain} is not internally connected")
            }
            PartitionError::BoundaryMismatch { link } => {
                write!(f, "boundary set disagrees with domain assignment at {link}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A total assignment of nodes to domains plus the boundary-link set.
///
/// Every core switch belongs to exactly one domain; edge hosts inherit
/// the domain of their first core neighbor. The **boundary** is the
/// sorted set of core–core links whose endpoints lie in different
/// domains — exactly the links where hierarchical KAR re-encodes.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Domain index per node (`domain_of[n.0]`), hosts included.
    domain_of: Vec<usize>,
    /// Core switches of each domain, sorted by node id.
    domains: Vec<Vec<NodeId>>,
    /// Core–core links crossing domains, sorted by link id.
    boundary: Vec<LinkId>,
}

impl Partition {
    /// The trivial partition: every node in one domain, no boundary.
    ///
    /// Hierarchical routing over this partition must behave exactly
    /// like flat KAR — the differential tests pin that equivalence.
    pub fn single(topo: &Topology) -> Partition {
        let core_domain = vec![0usize; topo.node_count()];
        Partition::finish(topo, core_domain, 1).expect("single domain is always valid")
    }

    /// Chops a ring of core switches into `k` contiguous arcs.
    ///
    /// Walks the core cycle from the lowest-id switch and assigns
    /// near-equal runs of consecutive switches to each domain, so every
    /// arc is connected by construction.
    ///
    /// # Errors
    ///
    /// [`PartitionError::WrongShape`] when the core subgraph is not a
    /// single cycle, [`PartitionError::TooManyDomains`] when `k`
    /// exceeds the switch count.
    pub fn ring(topo: &Topology, k: usize) -> Result<Partition, PartitionError> {
        let cores = topo.core_nodes();
        if k == 0 || k > cores.len() {
            return Err(PartitionError::TooManyDomains {
                domains: k,
                cores: cores.len(),
            });
        }
        // Trace the cycle: every core must have exactly two core peers.
        let not_ring = PartitionError::WrongShape {
            expected: "a single cycle of core switches",
        };
        let core_peers = |n: NodeId| -> Vec<NodeId> {
            let mut p: Vec<NodeId> = topo
                .neighbors(n)
                .map(|(_, _, peer)| peer)
                .filter(|&peer| topo.switch_id(peer).is_some())
                .collect();
            p.sort();
            p
        };
        let start = cores[0];
        let mut order = vec![start];
        let first_peers = core_peers(start);
        if first_peers.len() != 2 {
            return Err(not_ring);
        }
        let mut prev = start;
        let mut cur = first_peers[0];
        while cur != start {
            let peers = core_peers(cur);
            if peers.len() != 2 {
                return Err(not_ring);
            }
            order.push(cur);
            let next = if peers[0] == prev { peers[1] } else { peers[0] };
            prev = cur;
            cur = next;
        }
        if order.len() != cores.len() {
            return Err(not_ring);
        }
        let mut core_domain = vec![0usize; topo.node_count()];
        for (i, &n) in order.iter().enumerate() {
            // Arc d covers positions [d*len/k, (d+1)*len/k).
            core_domain[n.0] = i * k / order.len();
        }
        Partition::finish(topo, core_domain, k)
    }

    /// Bands a generator grid (`C{r}_{c}` names) into `k` column bands.
    ///
    /// Each band is a contiguous run of columns spanning all rows, so
    /// bands are connected and boundaries are vertical cuts.
    ///
    /// # Errors
    ///
    /// [`PartitionError::NameParse`] when a core name is not `C{r}_{c}`,
    /// [`PartitionError::TooManyDomains`] when `k` exceeds the column
    /// count.
    pub fn grid(topo: &Topology, k: usize) -> Result<Partition, PartitionError> {
        let cores = topo.core_nodes();
        let mut col_of = vec![0usize; topo.node_count()];
        let mut max_col = 0usize;
        for &n in &cores {
            let name = &topo.node(n).name;
            let col = name
                .strip_prefix('C')
                .and_then(|rc| rc.split_once('_'))
                .and_then(|(r, c)| r.parse::<usize>().ok().and(c.parse::<usize>().ok()))
                .ok_or_else(|| PartitionError::NameParse { name: name.clone() })?;
            col_of[n.0] = col;
            max_col = max_col.max(col);
        }
        let cols = max_col + 1;
        if k == 0 || k > cols {
            return Err(PartitionError::TooManyDomains {
                domains: k,
                cores: cols,
            });
        }
        let mut core_domain = vec![0usize; topo.node_count()];
        for &n in &cores {
            core_domain[n.0] = col_of[n.0] * k / cols;
        }
        Partition::finish(topo, core_domain, k)
    }

    /// One domain per fat-tree pod, with core-switch group `a` folded
    /// into pod `a`'s domain (group `a` uplinks to `agg{a}_{a}`, so the
    /// fold keeps every domain connected).
    ///
    /// Expects the generator's names: `core{i}`, `agg{pod}_{i}`,
    /// `edge{pod}_{i}`.
    ///
    /// # Errors
    ///
    /// [`PartitionError::NameParse`] when a core-switch name matches
    /// none of the three patterns.
    pub fn fat_tree(topo: &Topology) -> Result<Partition, PartitionError> {
        let cores = topo.core_nodes();
        let pod_of = |name: &str| -> Option<usize> {
            for prefix in ["agg", "edge"] {
                if let Some(rest) = name.strip_prefix(prefix) {
                    return rest.split_once('_').and_then(|(p, _)| p.parse().ok());
                }
            }
            None
        };
        let mut pods = 0usize;
        let mut half = 0usize;
        let mut parsed: Vec<(NodeId, Option<usize>)> = Vec::with_capacity(cores.len());
        for &n in &cores {
            let name = &topo.node(n).name;
            if let Some(pod) = pod_of(name) {
                pods = pods.max(pod + 1);
                parsed.push((n, Some(pod)));
            } else if let Some(i) = name
                .strip_prefix("core")
                .and_then(|i| i.parse::<usize>().ok())
            {
                parsed.push((n, None));
                // Core switch i belongs to uplink group i / (k/2); half is
                // recovered below once the pod count (= k) is known.
                half = half.max(i + 1);
            } else {
                return Err(PartitionError::NameParse { name: name.clone() });
            }
        }
        if pods == 0 {
            return Err(PartitionError::WrongShape {
                expected: "a fat-tree with agg/edge pods",
            });
        }
        let group_size = pods / 2; // (k/2)² cores in k/2 groups of k/2
        let mut core_domain = vec![0usize; topo.node_count()];
        for &(n, pod) in &parsed {
            let name = &topo.node(n).name;
            match pod {
                Some(p) => core_domain[n.0] = p,
                None => {
                    let i: usize = name
                        .strip_prefix("core")
                        .and_then(|i| i.parse().ok())
                        .expect("checked above");
                    let group = i.checked_div(group_size).unwrap_or(0);
                    core_domain[n.0] = group.min(pods - 1);
                }
            }
        }
        let _ = half;
        Partition::finish(topo, core_domain, pods)
    }

    /// Generic fallback: grows `k` connected regions over the core
    /// subgraph by multi-source BFS from spread-out seeds.
    ///
    /// Seeds are chosen farthest-first (the first is the lowest-id
    /// core; each next seed maximizes hop distance to the chosen set),
    /// then every core joins the domain of the first seed to reach it,
    /// which keeps each region connected. Deterministic for a given
    /// topology.
    ///
    /// # Errors
    ///
    /// [`PartitionError::TooManyDomains`] when `k` exceeds the core
    /// count, [`PartitionError::DisconnectedDomain`] when the core
    /// subgraph itself is disconnected.
    pub fn bfs_balanced(topo: &Topology, k: usize) -> Result<Partition, PartitionError> {
        let cores = topo.core_nodes();
        if k == 0 || k > cores.len() {
            return Err(PartitionError::TooManyDomains {
                domains: k,
                cores: cores.len(),
            });
        }
        let is_core = |n: NodeId| topo.switch_id(n).is_some();
        // Farthest-first seed selection over the core subgraph.
        let mut seeds = vec![cores[0]];
        let mut dist_to_seeds = core_bfs_dist(topo, &seeds);
        while seeds.len() < k {
            let far = cores
                .iter()
                .copied()
                .filter(|n| !seeds.contains(n))
                .max_by_key(|n| (dist_to_seeds[n.0], std::cmp::Reverse(n.0)))
                .expect("k <= cores.len() leaves an unseeded core");
            seeds.push(far);
            let d = core_bfs_dist(topo, &[far]);
            for (a, b) in dist_to_seeds.iter_mut().zip(d) {
                *a = (*a).min(b);
            }
        }
        // Region growing: one shared FIFO seeded in domain order makes
        // the tie-break deterministic and every region connected.
        let mut core_domain = vec![usize::MAX; topo.node_count()];
        let mut q = VecDeque::new();
        for (d, &s) in seeds.iter().enumerate() {
            core_domain[s.0] = d;
            q.push_back(s);
        }
        while let Some(n) = q.pop_front() {
            let d = core_domain[n.0];
            let mut peers: Vec<NodeId> = topo
                .neighbors(n)
                .map(|(_, _, p)| p)
                .filter(|&p| is_core(p))
                .collect();
            peers.sort();
            for p in peers {
                if core_domain[p.0] == usize::MAX {
                    core_domain[p.0] = d;
                    q.push_back(p);
                }
            }
        }
        if let Some(&n) = cores.iter().find(|n| core_domain[n.0] == usize::MAX) {
            // Unreached core: the core subgraph is disconnected.
            let _ = n;
            return Err(PartitionError::DisconnectedDomain {
                domain: DomainId(0),
            });
        }
        for d in &mut core_domain {
            if *d == usize::MAX {
                *d = 0; // hosts; rewritten by finish()
            }
        }
        Partition::finish(topo, core_domain, k)
    }

    /// Picks a partitioner by inspecting the topology: fat-tree names,
    /// then grid names, then a core cycle, falling back to
    /// [`bfs_balanced`](Partition::bfs_balanced).
    ///
    /// # Errors
    ///
    /// Propagates the fallback's error when no shape matches and the
    /// BFS fallback also fails.
    pub fn auto(topo: &Topology, k: usize) -> Result<Partition, PartitionError> {
        if let Ok(p) = Partition::fat_tree(topo) {
            return Ok(p);
        }
        if let Ok(p) = Partition::grid(topo, k) {
            return Ok(p);
        }
        if let Ok(p) = Partition::ring(topo, k) {
            return Ok(p);
        }
        Partition::bfs_balanced(topo, k)
    }

    /// Completes a core-domain assignment: hosts inherit their first
    /// core neighbor's domain, the boundary set is derived, and the
    /// result is validated.
    fn finish(
        topo: &Topology,
        mut domain_of: Vec<usize>,
        k: usize,
    ) -> Result<Partition, PartitionError> {
        for n in 0..topo.node_count() {
            let id = NodeId(n);
            if topo.node(id).kind == NodeKind::Edge {
                domain_of[n] = topo
                    .neighbors(id)
                    .map(|(_, _, p)| p)
                    .find(|&p| topo.switch_id(p).is_some())
                    .map(|p| domain_of[p.0])
                    .unwrap_or(0);
            }
        }
        let mut domains: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for &n in &topo.core_nodes() {
            domains[domain_of[n.0]].push(n);
        }
        let mut boundary = Vec::new();
        for (i, link) in topo.links().iter().enumerate() {
            let both_core = topo.switch_id(link.a).is_some() && topo.switch_id(link.b).is_some();
            if both_core && domain_of[link.a.0] != domain_of[link.b.0] {
                boundary.push(LinkId(i));
            }
        }
        let p = Partition {
            domain_of,
            domains,
            boundary,
        };
        p.validate(topo)?;
        Ok(p)
    }

    /// The domain of `n` (hosts report their attached core's domain).
    pub fn domain_of(&self, n: NodeId) -> DomainId {
        DomainId(self.domain_of[n.0])
    }

    /// Number of domains.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// Core switches of each domain, sorted by node id.
    pub fn domains(&self) -> &[Vec<NodeId>] {
        &self.domains
    }

    /// Core switches of domain `d`, sorted by node id.
    pub fn domain_cores(&self, d: DomainId) -> &[NodeId] {
        &self.domains[d.0]
    }

    /// The sorted core–core links whose endpoints differ in domain.
    pub fn boundary_links(&self) -> &[LinkId] {
        &self.boundary
    }

    /// Whether `l` crosses a domain boundary.
    pub fn is_boundary(&self, l: LinkId) -> bool {
        self.boundary.binary_search(&l).is_ok()
    }

    /// Checks the three invariants hierarchical encoding relies on.
    ///
    /// 1. **Total assignment** — every core switch is in exactly one
    ///    domain list, consistent with `domain_of`, and no domain is
    ///    empty.
    /// 2. **Symmetric boundary** — the boundary set is exactly the
    ///    core–core links whose endpoint domains differ (an undirected
    ///    link is boundary regardless of crossing direction).
    /// 3. **Connected domains** — each domain's induced core subgraph
    ///    is connected, so intra-domain segments never need to leave.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`PartitionError`].
    pub fn validate(&self, topo: &Topology) -> Result<(), PartitionError> {
        // 1. Total, consistent, non-empty.
        let mut seen = vec![0usize; topo.node_count()];
        for (d, members) in self.domains.iter().enumerate() {
            if members.is_empty() {
                return Err(PartitionError::EmptyDomain {
                    domain: DomainId(d),
                });
            }
            for &n in members {
                seen[n.0] += 1;
                if self.domain_of[n.0] != d {
                    return Err(PartitionError::BoundaryMismatch {
                        link: LinkId(usize::MAX),
                    });
                }
            }
        }
        for &n in &topo.core_nodes() {
            if seen[n.0] != 1 {
                return Err(PartitionError::EmptyDomain {
                    domain: DomainId(self.domain_of[n.0]),
                });
            }
        }
        // 2. Boundary = cross-domain core links, both directions.
        for (i, link) in topo.links().iter().enumerate() {
            let l = LinkId(i);
            let both_core = topo.switch_id(link.a).is_some() && topo.switch_id(link.b).is_some();
            let crosses = both_core && self.domain_of[link.a.0] != self.domain_of[link.b.0];
            if crosses != self.is_boundary(l) {
                return Err(PartitionError::BoundaryMismatch { link: l });
            }
        }
        // 3. Each domain's induced core subgraph is connected.
        for (d, members) in self.domains.iter().enumerate() {
            let mut reach = vec![false; topo.node_count()];
            let mut stack = vec![members[0]];
            reach[members[0].0] = true;
            let mut count = 1;
            while let Some(n) = stack.pop() {
                for (_, _, p) in topo.neighbors(n) {
                    if topo.switch_id(p).is_some() && self.domain_of[p.0] == d && !reach[p.0] {
                        reach[p.0] = true;
                        count += 1;
                        stack.push(p);
                    }
                }
            }
            if count != members.len() {
                return Err(PartitionError::DisconnectedDomain {
                    domain: DomainId(d),
                });
            }
        }
        Ok(())
    }
}

/// Multi-source BFS hop distances over the core subgraph (`usize::MAX`
/// for unreached nodes and hosts).
fn core_bfs_dist(topo: &Topology, sources: &[NodeId]) -> Vec<usize> {
    let mut dist = vec![usize::MAX; topo.node_count()];
    let mut q = VecDeque::new();
    for &s in sources {
        dist[s.0] = 0;
        q.push_back(s);
    }
    while let Some(n) = q.pop_front() {
        for (_, _, p) in topo.neighbors(n) {
            if topo.switch_id(p).is_some() && dist[p.0] == usize::MAX {
                dist[p.0] = dist[n.0] + 1;
                q.push_back(p);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::graph::LinkParams;
    use kar_rns::IdStrategy;

    fn params() -> LinkParams {
        LinkParams::default()
    }

    #[test]
    fn single_domain_covers_everything() {
        let t = crate::topo15::build();
        let p = Partition::single(&t);
        assert_eq!(p.num_domains(), 1);
        assert!(p.boundary_links().is_empty());
        assert_eq!(p.domain_cores(DomainId(0)).len(), t.core_nodes().len());
        p.validate(&t).unwrap();
    }

    #[test]
    fn ring_arcs_are_contiguous_and_boundary_is_k() {
        let t = gen::ring(12, IdStrategy::SmallestPrimes, params());
        let p = Partition::ring(&t, 4).unwrap();
        assert_eq!(p.num_domains(), 4);
        // A ring cut into k arcs has exactly k boundary links.
        assert_eq!(p.boundary_links().len(), 4);
        for d in 0..4 {
            assert_eq!(p.domain_cores(DomainId(d)).len(), 3);
        }
        p.validate(&t).unwrap();
    }

    #[test]
    fn ring_rejects_non_rings() {
        let t = gen::grid(3, 3, IdStrategy::SmallestPrimes, params());
        assert!(matches!(
            Partition::ring(&t, 2),
            Err(PartitionError::WrongShape { .. })
        ));
    }

    #[test]
    fn grid_bands_split_columns() {
        let t = gen::grid(4, 6, IdStrategy::SmallestPrimes, params());
        let p = Partition::grid(&t, 3).unwrap();
        assert_eq!(p.num_domains(), 3);
        // Two vertical cuts × 4 rows of horizontal links.
        assert_eq!(p.boundary_links().len(), 8);
        for d in 0..3 {
            assert_eq!(p.domain_cores(DomainId(d)).len(), 8);
        }
        p.validate(&t).unwrap();
    }

    #[test]
    fn fat_tree_pods_become_domains() {
        let t = gen::fat_tree(4, IdStrategy::SmallestPrimes, params());
        let p = Partition::fat_tree(&t).unwrap();
        assert_eq!(p.num_domains(), 4);
        p.validate(&t).unwrap();
        // Every agg/edge switch sits in its pod's domain.
        for &n in &t.core_nodes() {
            let name = &t.node(n).name;
            if let Some(rest) = name.strip_prefix("agg").or(name.strip_prefix("edge")) {
                let pod: usize = rest.split_once('_').unwrap().0.parse().unwrap();
                assert_eq!(p.domain_of(n), DomainId(pod), "{name}");
            }
        }
    }

    #[test]
    fn bfs_balanced_partitions_random_graphs() {
        for seed in 0..4 {
            let t = gen::try_random_connected_hosts(
                24,
                12,
                seed,
                IdStrategy::SmallestCoprime,
                params(),
            )
            .unwrap();
            let p = Partition::bfs_balanced(&t, 4).unwrap();
            assert_eq!(p.num_domains(), 4);
            p.validate(&t).unwrap();
            // Reasonable balance: no domain is empty (validate) and the
            // largest holds fewer than all cores.
            let sizes: Vec<usize> = p.domains().iter().map(Vec::len).collect();
            assert!(sizes.iter().all(|&s| s >= 1));
            assert!(*sizes.iter().max().unwrap() < 24);
        }
    }

    #[test]
    fn too_many_domains_is_an_error() {
        let t = gen::ring(4, IdStrategy::SmallestPrimes, params());
        assert!(matches!(
            Partition::bfs_balanced(&t, 5),
            Err(PartitionError::TooManyDomains {
                domains: 5,
                cores: 4
            })
        ));
        assert!(matches!(
            Partition::ring(&t, 0),
            Err(PartitionError::TooManyDomains { .. })
        ));
    }

    #[test]
    fn hosts_inherit_their_switch_domain() {
        let t = gen::ring(8, IdStrategy::SmallestPrimes, params());
        let p = Partition::ring(&t, 2).unwrap();
        for i in 0..8 {
            let host = t.expect(&format!("H{i}"));
            let core = t.expect(&format!("C{i}"));
            assert_eq!(p.domain_of(host), p.domain_of(core));
        }
    }

    #[test]
    fn auto_detects_each_family() {
        let ring = gen::ring(12, IdStrategy::SmallestPrimes, params());
        assert_eq!(Partition::auto(&ring, 3).unwrap().num_domains(), 3);
        let grid = gen::grid(4, 4, IdStrategy::SmallestPrimes, params());
        assert_eq!(Partition::auto(&grid, 2).unwrap().num_domains(), 2);
        let ft = gen::fat_tree(4, IdStrategy::SmallestPrimes, params());
        assert_eq!(Partition::auto(&ft, 4).unwrap().num_domains(), 4);
        let rnd = gen::try_random_connected_hosts(20, 10, 3, IdStrategy::SmallestCoprime, params())
            .unwrap();
        assert_eq!(Partition::auto(&rnd, 4).unwrap().num_domains(), 4);
    }

    #[test]
    fn boundary_membership_is_symmetric_in_link_direction() {
        let t = gen::grid(3, 4, IdStrategy::SmallestPrimes, params());
        let p = Partition::grid(&t, 2).unwrap();
        for &l in p.boundary_links() {
            let link = t.link(l);
            assert_ne!(p.domain_of(link.a), p.domain_of(link.b));
        }
        for (i, link) in t.links().iter().enumerate() {
            let both_core = t.switch_id(link.a).is_some() && t.switch_id(link.b).is_some();
            if both_core && p.domain_of(link.a) != p.domain_of(link.b) {
                assert!(p.is_boundary(LinkId(i)));
            }
        }
    }
}
