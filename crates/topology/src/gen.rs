//! Synthetic topology generators for benchmarks, ablations, and property
//! tests: lines, rings, grids, and random connected graphs, each with
//! automatically assigned pairwise-coprime switch IDs.
//!
//! Every generator comes in two flavours: a panicking one (`ring`, …) for
//! tests and examples where ID allocation cannot fail, and a fallible
//! `try_*` one returning [`GenError`] when the [`IdStrategy`] runs out of
//! usable IDs — which genuinely happens at scale with bounded strategies
//! such as `IdStrategy::PrimesBelow`. The error reports how many switches
//! *did* get an ID, so a sweep can chart the achievable ceiling per
//! strategy instead of aborting.

use crate::builder::TopologyBuilder;
use crate::graph::{LinkParams, NodeId, Topology};
use kar_rns::{IdAllocator, IdError, IdStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// ID allocation ran dry while generating a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenError {
    /// Switches that received an ID before the allocator gave up — the
    /// achievable network size under this strategy and degree sequence.
    pub assigned: usize,
    /// Switches the generator needed in total.
    pub requested: usize,
    /// The underlying allocation failure.
    pub source: IdError,
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "id allocation exhausted after {}/{} switches: {}",
            self.assigned, self.requested, self.source
        )
    }
}

impl std::error::Error for GenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Assigns coprime IDs to `n` switches with the given degrees, reporting
/// how far allocation got when the strategy runs out of IDs.
fn try_assign_ids(strategy: IdStrategy, degrees: &[usize]) -> Result<Vec<u64>, GenError> {
    let mut alloc = IdAllocator::new(strategy);
    let mut ids = Vec::with_capacity(degrees.len());
    for &d in degrees {
        match alloc.allocate(d) {
            Ok(id) => ids.push(id),
            Err(source) => {
                return Err(GenError {
                    assigned: ids.len(),
                    requested: degrees.len(),
                    source,
                })
            }
        }
    }
    Ok(ids)
}

/// A line of `n` core switches with one edge host at each end.
///
/// Useful for encoding-size sweeps: the route-ID bit length grows with
/// path length (paper §2.3).
///
/// # Panics
///
/// Panics if `n == 0` or ID allocation is exhausted (use [`try_line`]).
pub fn line(n: usize, strategy: IdStrategy, params: LinkParams) -> Topology {
    try_line(n, strategy, params).expect("allocator exhausted")
}

/// Fallible form of [`line`].
///
/// # Errors
///
/// [`GenError`] when the strategy cannot supply `n` coprime IDs.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn try_line(n: usize, strategy: IdStrategy, params: LinkParams) -> Result<Topology, GenError> {
    assert!(n > 0, "a line needs at least one switch");
    let mut degrees = vec![2usize; n];
    degrees[0] = 2; // host + next
    degrees[n - 1] = 2;
    let ids = try_assign_ids(strategy, &degrees)?;
    let mut b = TopologyBuilder::new();
    let src = b.edge("H0");
    let cores: Vec<NodeId> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| b.core(&format!("C{i}"), id))
        .collect();
    let dst = b.edge("H1");
    b.link(src, cores[0], params);
    for w in cores.windows(2) {
        b.link(w[0], w[1], params);
    }
    b.link(cores[n - 1], dst, params);
    Ok(b.build().expect("line construction is valid"))
}

/// A ring of `n ≥ 3` core switches, each with an attached edge host.
///
/// Rings give every node exactly one alternative direction — the smallest
/// topology where deflection routing is always possible.
///
/// # Panics
///
/// Panics if `n < 3` or ID allocation is exhausted (use [`try_ring`]).
pub fn ring(n: usize, strategy: IdStrategy, params: LinkParams) -> Topology {
    try_ring(n, strategy, params).expect("allocator exhausted")
}

/// Fallible form of [`ring`].
///
/// # Errors
///
/// [`GenError`] when the strategy cannot supply `n` coprime IDs.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn try_ring(n: usize, strategy: IdStrategy, params: LinkParams) -> Result<Topology, GenError> {
    assert!(n >= 3, "a ring needs at least three switches");
    let ids = try_assign_ids(strategy, &vec![3usize; n])?;
    let mut b = TopologyBuilder::new();
    let cores: Vec<NodeId> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| b.core(&format!("C{i}"), id))
        .collect();
    for i in 0..n {
        b.link(cores[i], cores[(i + 1) % n], params);
    }
    for (i, &c) in cores.iter().enumerate() {
        let h = b.edge(&format!("H{i}"));
        b.link(c, h, params);
    }
    Ok(b.build().expect("ring construction is valid"))
}

/// A `rows × cols` grid of core switches with hosts on the four corners.
///
/// # Panics
///
/// Panics if `rows * cols < 2` or ID allocation is exhausted (use
/// [`try_grid`]).
pub fn grid(rows: usize, cols: usize, strategy: IdStrategy, params: LinkParams) -> Topology {
    try_grid(rows, cols, strategy, params).expect("allocator exhausted")
}

/// Fallible form of [`grid`].
///
/// # Errors
///
/// [`GenError`] when the strategy cannot supply enough coprime IDs.
///
/// # Panics
///
/// Panics if `rows * cols < 2`.
pub fn try_grid(
    rows: usize,
    cols: usize,
    strategy: IdStrategy,
    params: LinkParams,
) -> Result<Topology, GenError> {
    assert!(rows * cols >= 2, "a grid needs at least two switches");
    let deg = |r: usize, c: usize| {
        let mut d = 0;
        if r > 0 {
            d += 1;
        }
        if r + 1 < rows {
            d += 1;
        }
        if c > 0 {
            d += 1;
        }
        if c + 1 < cols {
            d += 1;
        }
        d + 1 // room for a host port
    };
    let mut degrees = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            degrees.push(deg(r, c));
        }
    }
    let ids = try_assign_ids(strategy, &degrees)?;
    let mut b = TopologyBuilder::new();
    let mut cores = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            cores.push(b.core(&format!("C{r}_{c}"), ids[r * cols + c]));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            let cur = cores[r * cols + c];
            if c + 1 < cols {
                b.link(cur, cores[r * cols + c + 1], params);
            }
            if r + 1 < rows {
                b.link(cur, cores[(r + 1) * cols + c], params);
            }
        }
    }
    for (label, (r, c)) in [
        ("H_NW", (0, 0)),
        ("H_NE", (0, cols - 1)),
        ("H_SW", (rows - 1, 0)),
        ("H_SE", (rows - 1, cols - 1)),
    ] {
        // Grids down to 1×2 still have distinct corner labels but may
        // share corner switches; skip duplicates.
        let corner = cores[r * cols + c];
        let h = b.edge(label);
        b.link(h, corner, params);
    }
    Ok(b.build().expect("grid construction is valid"))
}

/// Random connected wiring shared by [`try_random_connected`] and
/// [`try_random_connected_hosts`]: a random recursive spanning tree plus
/// `extra_links` chords. Returns the edge list and per-switch degrees
/// *excluding* host ports.
fn random_wiring(n: usize, extra_links: usize, seed: u64) -> (Vec<(usize, usize)>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Random recursive tree: node i attaches to a random predecessor.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 1..n {
        let p = rng.gen_range(0..i);
        edges.push((p, i));
        adj[p].push(i);
        adj[i].push(p);
    }
    let mut tries = 0;
    let mut added = 0;
    while added < extra_links && tries < extra_links * 50 {
        tries += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b || adj[a].contains(&b) {
            continue;
        }
        edges.push((a.min(b), a.max(b)));
        adj[a].push(b);
        adj[b].push(a);
        added += 1;
    }
    let degrees = adj.iter().map(Vec::len).collect();
    (edges, degrees)
}

/// A random connected graph: a spanning tree (guaranteeing connectivity)
/// plus `extra_links` random chords, seeded for reproducibility. Two edge
/// hosts attach to the first and last switch.
///
/// # Panics
///
/// Panics if `n < 2` or ID allocation is exhausted (use
/// [`try_random_connected`]).
pub fn random_connected(
    n: usize,
    extra_links: usize,
    seed: u64,
    strategy: IdStrategy,
    params: LinkParams,
) -> Topology {
    try_random_connected(n, extra_links, seed, strategy, params).expect("allocator exhausted")
}

/// Fallible form of [`random_connected`].
///
/// # Errors
///
/// [`GenError`] when the strategy cannot supply `n` coprime IDs.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn try_random_connected(
    n: usize,
    extra_links: usize,
    seed: u64,
    strategy: IdStrategy,
    params: LinkParams,
) -> Result<Topology, GenError> {
    assert!(n >= 2, "need at least two switches");
    let (edges, mut degrees) = random_wiring(n, extra_links, seed);
    for d in &mut degrees {
        *d += 1; // room for a potential host port
    }
    let ids = try_assign_ids(strategy, &degrees)?;
    let mut b = TopologyBuilder::new();
    let cores: Vec<NodeId> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| b.core(&format!("C{i}"), id))
        .collect();
    for &(x, y) in &edges {
        b.link(cores[x], cores[y], params);
    }
    let h0 = b.edge("H0");
    let h1 = b.edge("H1");
    b.link(h0, cores[0], params);
    b.link(h1, cores[n - 1], params);
    Ok(b.build().expect("random construction is valid"))
}

/// Like [`try_random_connected`] but with one edge host per switch
/// (`H0 … H{n-1}`, host `Hi` on switch `Ci`) — the workload shape the
/// scale campaign needs to drive hundreds of concurrent flows between
/// arbitrary node pairs.
///
/// # Errors
///
/// [`GenError`] when the strategy cannot supply `n` coprime IDs.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn try_random_connected_hosts(
    n: usize,
    extra_links: usize,
    seed: u64,
    strategy: IdStrategy,
    params: LinkParams,
) -> Result<Topology, GenError> {
    assert!(n >= 2, "need at least two switches");
    let (edges, mut degrees) = random_wiring(n, extra_links, seed);
    for d in &mut degrees {
        *d += 1; // every switch gets a host port
    }
    let ids = try_assign_ids(strategy, &degrees)?;
    let mut b = TopologyBuilder::new();
    let cores: Vec<NodeId> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| b.core(&format!("C{i}"), id))
        .collect();
    for &(x, y) in &edges {
        b.link(cores[x], cores[y], params);
    }
    for (i, &c) in cores.iter().enumerate() {
        let h = b.edge(&format!("H{i}"));
        b.link(h, c, params);
    }
    Ok(b.build().expect("random construction is valid"))
}

/// A k-ary fat-tree (k even): `k` pods of `k/2` edge and `k/2`
/// aggregation switches plus `(k/2)²` core switches — the canonical
/// data-center topology, included because SlickFlow (a system the paper
/// compares against) evaluates on it. One host attaches to the first
/// edge switch of each pod.
///
/// # Panics
///
/// Panics if `k` is odd or below 2, or ID allocation is exhausted (use
/// [`try_fat_tree`]).
pub fn fat_tree(k: usize, strategy: IdStrategy, params: LinkParams) -> Topology {
    try_fat_tree(k, strategy, params).expect("allocator exhausted")
}

/// Fallible form of [`fat_tree`].
///
/// # Errors
///
/// [`GenError`] when the strategy cannot supply enough coprime IDs.
///
/// # Panics
///
/// Panics if `k` is odd or below 2.
pub fn try_fat_tree(
    k: usize,
    strategy: IdStrategy,
    params: LinkParams,
) -> Result<Topology, GenError> {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity must be even and ≥ 2"
    );
    let half = k / 2;
    let n_core = half * half;
    let n_agg = k * half;
    let n_edge_sw = k * half;
    // Degrees: core = k (one per pod); agg = k (half up, half down);
    // edge switch = half up + half hosts (we attach one host to the
    // first edge switch per pod, so degree ≤ half + 1).
    let mut degrees = Vec::new();
    degrees.extend(std::iter::repeat_n(k, n_core));
    degrees.extend(std::iter::repeat_n(k, n_agg));
    degrees.extend(std::iter::repeat_n(half + 1, n_edge_sw));
    let ids = try_assign_ids(strategy, &degrees)?;
    let mut b = TopologyBuilder::new();
    let core: Vec<NodeId> = (0..n_core)
        .map(|i| b.core(&format!("core{i}"), ids[i]))
        .collect();
    let agg: Vec<NodeId> = (0..n_agg)
        .map(|i| b.core(&format!("agg{}_{}", i / half, i % half), ids[n_core + i]))
        .collect();
    let edge_sw: Vec<NodeId> = (0..n_edge_sw)
        .map(|i| {
            b.core(
                &format!("edge{}_{}", i / half, i % half),
                ids[n_core + n_agg + i],
            )
        })
        .collect();
    for pod in 0..k {
        for a in 0..half {
            let agg_node = agg[pod * half + a];
            // Up: aggregation a connects to core group a.
            for c in 0..half {
                b.link(agg_node, core[a * half + c], params);
            }
            // Down: to every edge switch in the pod.
            for e in 0..half {
                b.link(agg_node, edge_sw[pod * half + e], params);
            }
        }
        let host = b.edge(&format!("H{pod}"));
        b.link(host, edge_sw[pod * half], params);
    }
    Ok(b.build().expect("fat-tree construction is valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::bfs_shortest_path;
    use kar_rns::pairwise_coprime;

    #[test]
    fn line_shape() {
        let t = line(5, IdStrategy::SmallestPrimes, LinkParams::default());
        assert_eq!(t.core_nodes().len(), 5);
        assert_eq!(t.edge_nodes().len(), 2);
        assert_eq!(t.link_count(), 6);
        assert!(t.is_connected());
        let p = bfs_shortest_path(&t, t.expect("H0"), t.expect("H1")).unwrap();
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn ring_shape() {
        let t = ring(6, IdStrategy::SmallestPrimes, LinkParams::default());
        assert_eq!(t.core_nodes().len(), 6);
        assert_eq!(t.edge_nodes().len(), 6);
        assert_eq!(t.link_count(), 12);
        assert!(t.is_connected());
        for c in t.core_nodes() {
            assert_eq!(t.node(c).degree(), 3);
        }
    }

    #[test]
    fn grid_shape() {
        let t = grid(3, 4, IdStrategy::SmallestPrimes, LinkParams::default());
        assert_eq!(t.core_nodes().len(), 12);
        // 3*3 + 2*4 internal links + 4 host links.
        assert_eq!(t.link_count(), 17 + 4);
        assert!(t.is_connected());
    }

    #[test]
    fn random_is_connected_and_coprime() {
        for seed in 0..5 {
            let t = random_connected(
                20,
                15,
                seed,
                IdStrategy::SmallestPrimes,
                LinkParams::default(),
            );
            assert!(t.is_connected(), "seed {seed}");
            assert!(pairwise_coprime(&t.switch_ids()));
            for c in t.core_nodes() {
                assert!(t.switch_id(c).unwrap() > t.node(c).degree() as u64);
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = random_connected(12, 6, 42, IdStrategy::SmallestPrimes, LinkParams::default());
        let b = random_connected(12, 6, 42, IdStrategy::SmallestPrimes, LinkParams::default());
        assert_eq!(a.switch_ids(), b.switch_ids());
        assert_eq!(a.link_count(), b.link_count());
        let c = random_connected(12, 6, 43, IdStrategy::SmallestPrimes, LinkParams::default());
        // Different seed gives a different wiring (ids may coincide).
        let same_links = a
            .links()
            .iter()
            .zip(c.links())
            .all(|(x, y)| (x.a, x.b) == (y.a, y.b));
        assert!(!same_links || a.link_count() != c.link_count());
    }

    #[test]
    fn random_hosts_attaches_one_host_per_switch() {
        let t =
            try_random_connected_hosts(16, 8, 7, IdStrategy::SmallestPrimes, LinkParams::default())
                .unwrap();
        assert_eq!(t.core_nodes().len(), 16);
        assert_eq!(t.edge_nodes().len(), 16);
        assert!(t.is_connected());
        assert!(pairwise_coprime(&t.switch_ids()));
        // Same seed, same wiring as the two-host variant plus the hosts.
        let two = random_connected(16, 8, 7, IdStrategy::SmallestPrimes, LinkParams::default());
        assert_eq!(t.switch_ids(), two.switch_ids());
    }

    #[test]
    fn exhaustion_surfaces_as_an_error_with_the_achievable_ceiling() {
        // Ring switches have degree 3 → IDs must be ≥ 5; primes below 13
        // leave exactly {5, 7, 11}, so a 10-ring fails after 3 switches.
        let err = try_ring(10, IdStrategy::PrimesBelow(13), LinkParams::default()).unwrap_err();
        assert_eq!(err.assigned, 3);
        assert_eq!(err.requested, 10);
        assert_eq!(err.source, kar_rns::IdError::Exhausted { ports: 3 });
        assert!(err.to_string().contains("3/10"));
        // A 3-ring with the same budget still succeeds.
        let t = try_ring(3, IdStrategy::PrimesBelow(13), LinkParams::default()).unwrap();
        assert_eq!(t.switch_ids(), vec![5, 7, 11]);
    }

    #[test]
    #[should_panic(expected = "allocator exhausted")]
    fn panicking_generator_still_panics_on_exhaustion() {
        let _ = ring(10, IdStrategy::PrimesBelow(13), LinkParams::default());
    }

    #[test]
    fn fat_tree_shape() {
        let t = fat_tree(4, IdStrategy::SmallestPrimes, LinkParams::default());
        // k=4: 4 core + 8 agg + 8 edge switches + 4 hosts.
        assert_eq!(t.core_nodes().len(), 20);
        assert_eq!(t.edge_nodes().len(), 4);
        // Links: agg-core 8*2 + agg-edge 8*2 + hosts 4 = 36.
        assert_eq!(t.link_count(), 36);
        assert!(t.is_connected());
        assert!(kar_rns::pairwise_coprime(&t.switch_ids()));
        for c in t.core_nodes() {
            assert!(t.switch_id(c).unwrap() > t.node(c).degree() as u64);
        }
        // Multiple equal-cost paths exist between pods.
        let p = bfs_shortest_path(&t, t.expect("H0"), t.expect("H1")).unwrap();
        assert_eq!(p.len(), 7); // host-edge-agg-core-agg-edge-host
    }

    #[test]
    #[should_panic(expected = "even")]
    fn fat_tree_rejects_odd_arity() {
        let _ = fat_tree(3, IdStrategy::SmallestPrimes, LinkParams::default());
    }

    #[test]
    fn strategies_affect_ids() {
        let p = line(4, IdStrategy::SmallestPrimes, LinkParams::default());
        let c = line(4, IdStrategy::SmallestCoprime, LinkParams::default());
        assert_eq!(p.switch_ids(), vec![3, 5, 7, 11]);
        assert_eq!(c.switch_ids(), vec![3, 4, 5, 7]);
    }
}
