//! Core graph model: nodes, ports, links.
//!
//! A KAR network distinguishes **edge nodes** (hosts/edges that attach and
//! strip route IDs) from **core switches** (which own a coprime switch ID
//! and forward by `route_id mod switch_id`). Ports on a node are numbered
//! `0..degree` in link-insertion order; a switch's output-port index must
//! be a valid residue of its switch ID, so every core switch requires
//! `switch_id > max port index`.

use std::collections::HashMap;
use std::fmt;

/// Index of a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A port index local to one node (`0..degree`).
pub type PortIx = u64;

/// What a node is, in KAR terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An edge node: attaches route IDs on ingress, strips them on egress,
    /// hosts applications. Holds no switch ID.
    Edge,
    /// A core switch with its (network-wide pairwise-coprime) switch ID.
    Core {
        /// The switch ID used as the modulus in forwarding.
        switch_id: u64,
    },
}

impl NodeKind {
    /// The switch ID if this is a core switch.
    pub fn switch_id(&self) -> Option<u64> {
        match self {
            NodeKind::Core { switch_id } => Some(*switch_id),
            NodeKind::Edge => None,
        }
    }
}

/// A node of the topology.
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable name (`"SW7"`, `"AS1"`, `"BoaVista"`, …).
    pub name: String,
    /// Edge or core switch.
    pub kind: NodeKind,
    /// Outgoing port table: `ports[p]` is the link reachable via port `p`.
    pub ports: Vec<LinkId>,
}

impl Node {
    /// Number of ports (== degree).
    pub fn degree(&self) -> usize {
        self.ports.len()
    }
}

/// Transmission properties of one link (both directions are symmetric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Transmission rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay in nanoseconds.
    pub delay_ns: u64,
    /// Drop-tail queue capacity per direction, in packets.
    pub queue_pkts: usize,
}

impl LinkParams {
    /// Convenience constructor from megabits/second and microseconds.
    pub fn new(rate_mbps: u64, delay_us: u64) -> Self {
        LinkParams {
            rate_bps: rate_mbps * 1_000_000,
            delay_ns: delay_us * 1_000,
            queue_pkts: 100,
        }
    }

    /// Sets the per-direction queue capacity (builder style).
    pub fn with_queue(mut self, pkts: usize) -> Self {
        self.queue_pkts = pkts;
        self
    }
}

impl Default for LinkParams {
    /// 200 Mbit/s, 250 µs propagation, 100-packet queues — the defaults of
    /// the paper's 15-node emulation (nominal 200 Mbit/s TCP).
    fn default() -> Self {
        LinkParams::new(200, 250)
    }
}

/// An undirected link between two `(node, port)` endpoints.
#[derive(Debug, Clone)]
pub struct Link {
    /// First endpoint node.
    pub a: NodeId,
    /// Port index on `a` leading to `b`.
    pub a_port: PortIx,
    /// Second endpoint node.
    pub b: NodeId,
    /// Port index on `b` leading to `a`.
    pub b_port: PortIx,
    /// Rate/delay/queue parameters.
    pub params: LinkParams,
}

impl Link {
    /// The endpoint opposite `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this link.
    pub fn peer_of(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("node {n} is not an endpoint of this link")
        }
    }

    /// The port on `n` that leads into this link.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this link.
    pub fn port_on(&self, n: NodeId) -> PortIx {
        if n == self.a {
            self.a_port
        } else if n == self.b {
            self.b_port
        } else {
            panic!("node {n} is not an endpoint of this link")
        }
    }

    /// Returns `true` if `n` is one of the endpoints.
    pub fn touches(&self, n: NodeId) -> bool {
        n == self.a || n == self.b
    }
}

/// An immutable-after-build network topology.
///
/// Build one with [`TopologyBuilder`](crate::TopologyBuilder), or use the
/// ready-made paper topologies in [`topo15`](crate::topo15) and
/// [`rnp28`](crate::rnp28).
#[derive(Debug, Clone, Default)]
pub struct Topology {
    pub(crate) nodes: Vec<Node>,
    pub(crate) links: Vec<Link>,
    pub(crate) by_name: HashMap<String, NodeId>,
}

impl Topology {
    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links, indexable by [`LinkId`].
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (undirected) links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// The link with the given id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Looks a node up by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Looks a node up by name, panicking with a helpful message if absent.
    ///
    /// # Panics
    ///
    /// Panics if no node has this name.
    pub fn expect(&self, name: &str) -> NodeId {
        self.find(name)
            .unwrap_or_else(|| panic!("no node named {name:?} in topology"))
    }

    /// Looks a core switch up by its switch ID.
    pub fn find_switch(&self, switch_id: u64) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.kind.switch_id() == Some(switch_id))
            .map(NodeId)
    }

    /// The switch ID of `n`, if it is a core switch.
    pub fn switch_id(&self, n: NodeId) -> Option<u64> {
        self.node(n).kind.switch_id()
    }

    /// Iterator over `(port, link, peer)` triples of `n`.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (PortIx, LinkId, NodeId)> + '_ {
        self.node(n)
            .ports
            .iter()
            .enumerate()
            .map(move |(p, &l)| (p as PortIx, l, self.link(l).peer_of(n)))
    }

    /// The port on `from` that leads directly to `to`, if adjacent.
    pub fn port_towards(&self, from: NodeId, to: NodeId) -> Option<PortIx> {
        self.neighbors(from)
            .find(|&(_, _, peer)| peer == to)
            .map(|(p, _, _)| p)
    }

    /// The link between `a` and `b`, if adjacent.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.neighbors(a)
            .find(|&(_, _, peer)| peer == b)
            .map(|(_, l, _)| l)
    }

    /// The link between the nodes named `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either name is unknown or the nodes are not adjacent —
    /// intended for experiment scripts addressing links like `"SW7-SW13"`.
    pub fn expect_link(&self, a: &str, b: &str) -> LinkId {
        self.link_between(self.expect(a), self.expect(b))
            .unwrap_or_else(|| panic!("no link {a}-{b} in topology"))
    }

    /// All switch IDs of core nodes, in node order.
    pub fn switch_ids(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .filter_map(|n| n.kind.switch_id())
            .collect()
    }

    /// All edge-node ids.
    pub fn edge_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .filter(|&n| self.node(n).kind == NodeKind::Edge)
            .collect()
    }

    /// All core-node ids.
    pub fn core_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .filter(|&n| matches!(self.node(n).kind, NodeKind::Core { .. }))
            .collect()
    }

    /// Checks whether the whole topology is connected (ignoring direction).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for (_, _, peer) in self.neighbors(n) {
                if !seen[peer.0] {
                    seen[peer.0] = true;
                    count += 1;
                    stack.push(peer);
                }
            }
        }
        count == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    fn tiny() -> Topology {
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let sw4 = b.core("SW4", 4);
        let sw7 = b.core("SW7", 7);
        let d = b.edge("D");
        b.link(s, sw4, LinkParams::default());
        b.link(sw4, sw7, LinkParams::default());
        b.link(sw7, d, LinkParams::default());
        b.build().unwrap()
    }

    #[test]
    fn lookup_by_name_and_switch_id() {
        let t = tiny();
        assert_eq!(t.find("SW4"), Some(NodeId(1)));
        assert_eq!(t.find_switch(7), Some(NodeId(2)));
        assert_eq!(t.find("nope"), None);
        assert_eq!(t.switch_id(t.expect("SW7")), Some(7));
        assert_eq!(t.switch_id(t.expect("S")), None);
    }

    #[test]
    fn ports_are_insertion_ordered() {
        let t = tiny();
        let sw4 = t.expect("SW4");
        // First link touching SW4 was S-SW4 → port 0 towards S.
        assert_eq!(t.port_towards(sw4, t.expect("S")), Some(0));
        assert_eq!(t.port_towards(sw4, t.expect("SW7")), Some(1));
        assert_eq!(t.port_towards(sw4, t.expect("D")), None);
    }

    #[test]
    fn link_peers_and_ports() {
        let t = tiny();
        let l = t.expect_link("SW4", "SW7");
        let link = t.link(l);
        let sw4 = t.expect("SW4");
        let sw7 = t.expect("SW7");
        assert_eq!(link.peer_of(sw4), sw7);
        assert_eq!(link.peer_of(sw7), sw4);
        assert_eq!(link.port_on(sw4), 1);
        assert_eq!(link.port_on(sw7), 0);
        assert!(link.touches(sw4));
        assert!(!link.touches(t.expect("S")));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn peer_of_foreign_node_panics() {
        let t = tiny();
        let l = t.expect_link("SW4", "SW7");
        t.link(l).peer_of(t.expect("D"));
    }

    #[test]
    fn classification() {
        let t = tiny();
        assert_eq!(t.edge_nodes().len(), 2);
        assert_eq!(t.core_nodes().len(), 2);
        assert_eq!(t.switch_ids(), vec![4, 7]);
    }

    #[test]
    fn connectivity() {
        let t = tiny();
        assert!(t.is_connected());
        let mut b = TopologyBuilder::new();
        b.edge("A");
        b.edge("B");
        assert!(!b.build().unwrap().is_connected());
    }

    #[test]
    fn degrees() {
        let t = tiny();
        assert_eq!(t.node(t.expect("SW4")).degree(), 2);
        assert_eq!(t.node(t.expect("S")).degree(), 1);
        assert_eq!(t.neighbors(t.expect("SW4")).count(), 2);
    }

    #[test]
    fn default_params_match_paper_emulation() {
        let p = LinkParams::default();
        assert_eq!(p.rate_bps, 200_000_000);
        assert_eq!(p.delay_ns, 250_000);
    }
}
