//! The paper's 15-node experimental network (Fig. 2 / Fig. 3).
//!
//! The original figure is not machine-readable, so this module is a
//! *reconstruction* that honours every textual constraint of §3.1:
//!
//! * the primary route is SW10–SW7–SW13–SW29 between AS1 and AS3;
//! * Table 1 route-ID bit lengths are exactly 15 / 28 / 43 bits for
//!   4 / 7 / 10 switches (unprotected / partial / full) — satisfied by
//!   IDs {10,7,13,29} (M = 26 390), +{11,19,31} (M = 170 980 810) and
//!   +{17,37,41} (M ≈ 4.41·10¹²);
//! * when SW10–SW7 fails under partial protection, deflection at SW10 has
//!   three candidates of which two (SW17, SW37) are *not* protected — the
//!   paper's "2/3 of packets" observation;
//! * failures of SW7–SW13 and SW13–SW29 are fully enclosed by the partial
//!   protection path (all deflection candidates are protected);
//! * all 12 core switch IDs are pairwise coprime and exceed their degree;
//! * three edge nodes (AS1, AS2, AS3) complete the 15 nodes.
//!
//! Link rates default to 200 Mbit/s, the nominal TCP rate in Fig. 4/5.

use crate::builder::TopologyBuilder;
use crate::graph::{LinkParams, NodeId, Topology};

/// Names of the three autonomous-system edge nodes.
pub const EDGES: [&str; 3] = ["AS1", "AS2", "AS3"];

/// `(name, switch_id)` of the twelve core switches.
pub const SWITCHES: [(&str, u64); 12] = [
    ("SW7", 7),
    ("SW10", 10),
    ("SW13", 13),
    ("SW29", 29),
    ("SW11", 11),
    ("SW19", 19),
    ("SW31", 31),
    ("SW17", 17),
    ("SW37", 37),
    ("SW41", 41),
    ("SW23", 23),
    ("SW43", 43),
];

/// The 22 undirected links as name pairs, in port-assignment order.
pub const LINKS: [(&str, &str); 22] = [
    ("AS1", "SW10"),
    ("SW10", "SW7"),
    ("SW7", "SW13"),
    ("SW13", "SW29"),
    ("SW29", "AS3"),
    // Partial-protection branch (SW11 → SW19 → SW31 → SW29).
    ("SW10", "SW11"),
    ("SW7", "SW11"),
    ("SW7", "SW19"),
    ("SW13", "SW19"),
    ("SW13", "SW31"),
    ("SW11", "SW19"),
    ("SW19", "SW31"),
    ("SW31", "SW29"),
    // Full-protection branch (SW17/SW37 → SW41 → SW29).
    ("SW10", "SW17"),
    ("SW10", "SW37"),
    ("SW17", "SW41"),
    ("SW37", "SW41"),
    ("SW41", "SW29"),
    // Mesh filler giving hot-potato packets somewhere to wander.
    ("SW17", "SW23"),
    ("SW23", "SW43"),
    ("SW43", "SW37"),
    ("AS2", "SW23"),
];

/// The primary route of §3.1 as node names (AS1 → AS3).
pub const PRIMARY_ROUTE: [&str; 6] = ["AS1", "SW10", "SW7", "SW13", "SW29", "AS3"];

/// Partial-protection driven-deflection segments, as `(from, towards)`
/// name pairs: each protected switch's encoded output port points at
/// `towards`, forming a tree rooted near the destination (Fig. 3).
pub const PARTIAL_PROTECTION: [(&str, &str); 3] =
    [("SW11", "SW19"), ("SW19", "SW31"), ("SW31", "SW29")];

/// Extra segments that upgrade partial protection to full protection.
pub const FULL_EXTRA_PROTECTION: [(&str, &str); 3] =
    [("SW17", "SW41"), ("SW37", "SW41"), ("SW41", "SW29")];

/// The three failure locations evaluated in Fig. 5, as name pairs.
pub const FAILURE_LOCATIONS: [(&str, &str); 3] =
    [("SW10", "SW7"), ("SW7", "SW13"), ("SW13", "SW29")];

/// Builds the 15-node network with uniform `params` on every link.
///
/// # Panics
///
/// Never panics for the constants above; the construction is validated at
/// build time (coprimality, degree bounds) and covered by tests.
pub fn build_with_params(params: LinkParams) -> Topology {
    let mut b = TopologyBuilder::new();
    for name in EDGES {
        b.edge(name);
    }
    for (name, id) in SWITCHES {
        b.core(name, id);
    }
    for (x, y) in LINKS {
        b.link_names(x, y, params);
    }
    b.build().expect("topo15 constants are valid")
}

/// Builds the 15-node network with the paper's default 200 Mbit/s links.
pub fn build() -> Topology {
    build_with_params(LinkParams::default())
}

/// Resolves [`PRIMARY_ROUTE`] to node ids in `topo`.
pub fn primary_route(topo: &Topology) -> Vec<NodeId> {
    PRIMARY_ROUTE.iter().map(|n| topo.expect(n)).collect()
}

/// Resolves a protection constant to `(from, towards)` node-id pairs.
pub fn protection_pairs(topo: &Topology, pairs: &[(&str, &str)]) -> Vec<(NodeId, NodeId)> {
    pairs
        .iter()
        .map(|(a, b)| (topo.expect(a), topo.expect(b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{bfs_shortest_path, links_along, switch_port_pairs};
    use kar_rns::route_id_bit_length;

    #[test]
    fn has_15_nodes_and_22_links() {
        let t = build();
        assert_eq!(t.node_count(), 15);
        assert_eq!(t.link_count(), 22);
        assert!(t.is_connected());
    }

    #[test]
    fn primary_route_is_adjacent_and_shortest() {
        let t = build();
        let route = primary_route(&t);
        assert!(links_along(&t, &route).is_ok());
        let shortest = bfs_shortest_path(&t, t.expect("AS1"), t.expect("AS3")).unwrap();
        assert_eq!(
            shortest.len(),
            route.len(),
            "primary route must be a shortest path"
        );
    }

    #[test]
    fn table1_bit_lengths_hold() {
        // The decisive reconstruction constraint: Table 1 must reproduce.
        let t = build();
        let route = primary_route(&t);
        let mut ids: Vec<u64> = switch_port_pairs(&t, &route)
            .unwrap()
            .iter()
            .map(|&(id, _)| id)
            .collect();
        assert_eq!(ids, vec![10, 7, 13, 29]);
        assert_eq!(route_id_bit_length(&ids), 15);
        for (from, _) in PARTIAL_PROTECTION {
            ids.push(t.switch_id(t.expect(from)).unwrap());
        }
        assert_eq!(route_id_bit_length(&ids), 28);
        for (from, _) in FULL_EXTRA_PROTECTION {
            ids.push(t.switch_id(t.expect(from)).unwrap());
        }
        assert_eq!(ids.len(), 10);
        assert_eq!(route_id_bit_length(&ids), 43);
    }

    #[test]
    fn protection_segments_are_adjacent() {
        let t = build();
        for (a, b) in PARTIAL_PROTECTION.iter().chain(&FULL_EXTRA_PROTECTION) {
            assert!(
                t.port_towards(t.expect(a), t.expect(b)).is_some(),
                "{a} must neighbour {b}"
            );
        }
    }

    #[test]
    fn sw10_deflection_split_is_one_third_protected() {
        // §3.1: on SW10-SW7 failure, "2/3 of packets will be sent to
        // switches SW17 or SW37" — i.e. exactly one of SW10's three
        // non-input healthy neighbours lies on the partial protection path.
        let t = build();
        let sw10 = t.expect("SW10");
        let candidates: Vec<String> = t
            .neighbors(sw10)
            .map(|(_, _, p)| t.node(p).name.clone())
            .filter(|n| n != "AS1" && n != "SW7") // input + failed
            .collect();
        assert_eq!(candidates.len(), 3);
        let protected: Vec<&str> = PARTIAL_PROTECTION.iter().map(|&(a, _)| a).collect();
        let covered = candidates
            .iter()
            .filter(|c| protected.contains(&c.as_str()))
            .count();
        assert_eq!(
            covered, 1,
            "exactly 1/3 of SW10's deflection targets covered"
        );
        assert!(candidates.contains(&"SW17".to_string()));
        assert!(candidates.contains(&"SW37".to_string()));
    }

    #[test]
    fn sw7_and_sw13_deflections_fully_enclosed_by_partial() {
        // §3.1: "partial protection was enough to enclose the alternative
        // paths" for failures SW7-SW13 and SW13-SW29.
        let t = build();
        let protected: Vec<&str> = PARTIAL_PROTECTION.iter().map(|&(a, _)| a).collect();
        // SW7, failure towards SW13, input SW10:
        let c7: Vec<String> = t
            .neighbors(t.expect("SW7"))
            .map(|(_, _, p)| t.node(p).name.clone())
            .filter(|n| n != "SW10" && n != "SW13")
            .collect();
        assert!(!c7.is_empty());
        assert!(c7.iter().all(|c| protected.contains(&c.as_str())), "{c7:?}");
        // SW13, failure towards SW29, input SW7:
        let c13: Vec<String> = t
            .neighbors(t.expect("SW13"))
            .map(|(_, _, p)| t.node(p).name.clone())
            .filter(|n| n != "SW7" && n != "SW29")
            .collect();
        assert!(!c13.is_empty());
        assert!(
            c13.iter().all(|c| protected.contains(&c.as_str())),
            "{c13:?}"
        );
    }

    #[test]
    fn full_protection_covers_all_sw10_targets() {
        let t = build();
        let mut protected: Vec<&str> = PARTIAL_PROTECTION.iter().map(|&(a, _)| a).collect();
        protected.extend(FULL_EXTRA_PROTECTION.iter().map(|&(a, _)| a));
        let candidates: Vec<String> = t
            .neighbors(t.expect("SW10"))
            .map(|(_, _, p)| t.node(p).name.clone())
            .filter(|n| n != "AS1" && n != "SW7")
            .collect();
        assert!(candidates.iter().all(|c| protected.contains(&c.as_str())));
    }

    #[test]
    fn protection_trees_reach_destination() {
        // Following encoded protection ports from any protected switch must
        // terminate at SW29 (the egress core) without cycles.
        let _t = build();
        let mut next = std::collections::HashMap::new();
        for (a, b) in PARTIAL_PROTECTION.iter().chain(&FULL_EXTRA_PROTECTION) {
            next.insert(*a, *b);
        }
        for start in next.keys() {
            let mut cur = *start;
            let mut hops = 0;
            while let Some(&n) = next.get(cur) {
                cur = n;
                hops += 1;
                assert!(hops < 16, "protection chain from {start} loops");
            }
            assert_eq!(
                cur, "SW29",
                "protection chain from {start} must end at SW29"
            );
        }
    }

    #[test]
    fn failure_locations_exist() {
        let t = build();
        for (a, b) in FAILURE_LOCATIONS {
            let _ = t.expect_link(a, b);
        }
    }
}
