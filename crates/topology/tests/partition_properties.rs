//! Property tests for the domain partitioner behind hierarchical KAR.
//!
//! Whatever topology shape and domain count the sweep throws at
//! `Partition::auto`, the result must uphold the invariants the
//! hierarchical controller leans on: every core switch sits in exactly
//! one domain, the boundary-link set is exactly (and symmetrically) the
//! cross-domain core links, and each domain's induced core subgraph is
//! connected — plus [`Partition::validate`] agreeing on all three.

use kar_rns::IdStrategy;
use kar_topology::{gen, LinkParams, NodeId, Partition, Topology};
use proptest::prelude::*;

/// The generator shapes the sweep actually uses, parameterized enough
/// to hit the dedicated ring/grid recognizers *and* the BFS-balanced
/// fallback.
#[derive(Debug, Clone)]
enum Shape {
    Ring { n: usize },
    Grid { rows: usize, cols: usize },
    Random { n: usize, extra: usize, seed: u64 },
}

fn build(shape: &Shape) -> Option<Topology> {
    let params = LinkParams::default();
    match *shape {
        Shape::Ring { n } => gen::try_ring(n, IdStrategy::SmallestPrimes, params).ok(),
        Shape::Grid { rows, cols } => {
            gen::try_grid(rows, cols, IdStrategy::SmallestPrimes, params).ok()
        }
        Shape::Random { n, extra, seed } => {
            gen::try_random_connected(n, extra, seed, IdStrategy::SmallestPrimes, params).ok()
        }
    }
}

fn shapes() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (4usize..40).prop_map(|n| Shape::Ring { n }),
        ((2usize..8), (2usize..8)).prop_map(|(rows, cols)| Shape::Grid { rows, cols }),
        ((4usize..40), (0usize..20), any::<u64>()).prop_map(|(n, extra, seed)| Shape::Random {
            n,
            extra,
            seed
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn auto_partitions_uphold_the_hier_invariants(
        shape in shapes(),
        k in 2usize..6,
    ) {
        let Some(topo) = build(&shape) else {
            // ID allocation can run dry for big grids; nothing to test.
            return Ok(());
        };
        let Ok(p) = Partition::auto(&topo, k) else {
            // Too few switches for k domains is a legitimate refusal.
            return Ok(());
        };

        // Every core switch appears in exactly one domain list, and
        // that list is the one domain_of points at.
        let mut owner = vec![0usize; topo.node_count()];
        for (d, members) in p.domains().iter().enumerate() {
            prop_assert!(!members.is_empty(), "empty domain {d}");
            for &n in members {
                owner[n.0] += 1;
                prop_assert_eq!(p.domain_of(n).0, d, "{:?} listed in wrong domain", n);
            }
        }
        for &n in &topo.core_nodes() {
            prop_assert_eq!(owner[n.0], 1, "{:?} in {} domains", n, owner[n.0]);
        }

        // The boundary set is exactly the cross-domain core links, so
        // membership is symmetric in the link's endpoints: asking from
        // either side gives the same answer as comparing domains.
        for (i, link) in topo.links().iter().enumerate() {
            let l = kar_topology::LinkId(i);
            let both_core =
                topo.switch_id(link.a).is_some() && topo.switch_id(link.b).is_some();
            let crosses = both_core && p.domain_of(link.a) != p.domain_of(link.b);
            prop_assert_eq!(
                p.is_boundary(l),
                crosses,
                "boundary set disagrees with endpoint domains on link {}",
                i
            );
        }

        // Each domain's induced core subgraph is connected: walking
        // core links inside the domain from any member reaches all of
        // them (segments never need to leave their domain).
        for members in p.domains() {
            let d = p.domain_of(members[0]);
            let mut reach = vec![false; topo.node_count()];
            let mut stack: Vec<NodeId> = vec![members[0]];
            reach[members[0].0] = true;
            while let Some(n) = stack.pop() {
                for (_, _, peer) in topo.neighbors(n) {
                    if topo.switch_id(peer).is_some()
                        && p.domain_of(peer) == d
                        && !reach[peer.0]
                    {
                        reach[peer.0] = true;
                        stack.push(peer);
                    }
                }
            }
            for &n in members {
                prop_assert!(reach[n.0], "{:?} unreachable inside its domain", n);
            }
        }

        // And the partitioner's own validator agrees.
        prop_assert!(p.validate(&topo).is_ok());
    }
}
