//! Property tests for the `kar::wire` serialization — the single
//! route-ID framing shared by the simulator's packet path, the
//! `kar-service` daemon and the load driver:
//!
//! * every route of the paper's topologies round-trips through both
//!   wire modes byte-exactly and value-exactly;
//! * arbitrary byte soup never panics the decoder, and every accepted
//!   parse re-encodes to exactly the bytes it consumed (canonicality);
//! * truncating a valid frame anywhere always yields `Truncated` or
//!   another clean error, never a bogus success of the full value.

use kar::{EncodeRequest, KarNetwork, Protection, RouteHeader, WireError, WireMode};
use kar_topology::{rnp28, topo15, Topology};
use proptest::prelude::*;

/// Every ordered edge pair's route header on `topo`, in both
/// protection extremes (plain shortest path and fully protected).
fn all_headers(topo: &Topology) -> Vec<RouteHeader> {
    let mut net = KarNetwork::new(topo, kar::DeflectionTechnique::Nip);
    let mut out = Vec::new();
    let edges = topo.edge_nodes();
    for &src in &edges {
        for &dst in &edges {
            if src == dst {
                continue;
            }
            for protection in [Protection::None, Protection::AutoFull] {
                let outcome = net
                    .encode(&EncodeRequest::new(src, dst).with_protection(protection))
                    .expect("paper topologies are connected");
                out.push(outcome.header);
            }
        }
    }
    out
}

#[test]
fn every_paper_route_round_trips_in_both_modes() {
    for topo in [topo15::build(), rnp28::build()] {
        for header in all_headers(&topo) {
            for mode in [WireMode::Fixed, WireMode::Varint] {
                let frame = header.to_wire(mode);
                let (parsed, consumed) = RouteHeader::from_wire(&frame)
                    .unwrap_or_else(|e| panic!("{mode}: {e} on {} bits", header.bits()));
                assert_eq!(consumed, frame.len(), "{mode}: whole frame consumed");
                assert_eq!(parsed.unpack(), header.unpack(), "{mode}: value survives");
                assert_eq!(
                    parsed.to_wire(mode),
                    frame,
                    "{mode}: re-encoding is byte-identical"
                );
            }
        }
    }
}

#[test]
fn truncating_a_valid_frame_never_yields_a_full_parse() {
    let topo = topo15::build();
    for header in all_headers(&topo).into_iter().take(8) {
        for mode in [WireMode::Fixed, WireMode::Varint] {
            let frame = header.to_wire(mode);
            for cut in 0..frame.len() {
                match RouteHeader::from_wire(&frame[..cut]) {
                    Err(WireError::Truncated { .. }) => {}
                    Err(other) => panic!("{mode} cut at {cut}: unexpected error {other}"),
                    Ok((parsed, consumed)) => {
                        // A shorter *valid* prefix may parse (e.g. a
                        // varint length that fits in fewer bytes than
                        // the cut) — but never by consuming bytes past
                        // the cut, and never as the full frame's value
                        // unless the cut kept all of it.
                        assert!(consumed <= cut);
                        assert_ne!(
                            (consumed, parsed.unpack()),
                            (frame.len(), header.unpack()),
                            "{mode}: truncation reproduced the full parse"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    /// Decoding arbitrary bytes never panics, and an accepted parse is
    /// canonical: re-serializing the parsed header in the frame's own
    /// mode reproduces exactly the consumed prefix.
    #[test]
    fn garbage_bytes_never_panic_and_accepted_parses_are_canonical(
        bytes in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        match RouteHeader::from_wire(&bytes) {
            Err(_) => {}
            Ok((header, consumed)) => {
                prop_assert!(consumed <= bytes.len());
                let mode = WireMode::from_byte(bytes[0]).expect("accepted frame has a mode");
                let reencoded = header.to_wire(mode);
                prop_assert_eq!(reencoded.as_slice(), &bytes[..consumed]);
            }
        }
    }

    /// Arbitrary (bits, value-bytes) headers round-trip through both
    /// modes whenever the value fits the declared field.
    #[test]
    fn random_headers_round_trip(
        bits in 1u32..512,
        raw in proptest::collection::vec(any::<u8>(), 1..64)
    ) {
        let value = kar_rns::BigUint::from_bytes_be(&raw);
        let header = match RouteHeader::pack(&value, bits) {
            Ok(h) => h,
            // Value wider than the field: the typed overflow error.
            Err(e) => {
                let s = e.to_string();
                prop_assert!(s.contains("bits"), "unexpected error {s}");
                return Ok(());
            }
        };
        for mode in [WireMode::Fixed, WireMode::Varint] {
            let frame = header.to_wire(mode);
            let (parsed, consumed) = RouteHeader::from_wire(&frame).expect("round trip");
            prop_assert_eq!(consumed, frame.len());
            prop_assert_eq!(parsed.unpack(), value.clone());
        }
    }
}
