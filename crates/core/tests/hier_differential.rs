//! Differential test for hierarchical KAR's degenerate case: with the
//! whole topology as ONE domain there are no boundary links, so no
//! ingress ever re-stamps and the hierarchical forwarder must walk
//! exactly the flat KAR path — hop for hop, for every edge pair of
//! both paper topologies. Any divergence means the hierarchy layer
//! changes forwarding even when it should be a no-op.

use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
use kar_simnet::{FlowId, PacketFate, PacketKind};
use kar_topology::{rnp28, topo15, Partition, Topology};
use std::sync::Arc;

/// Every ordered edge pair of `topo`.
fn edge_pairs(topo: &Topology) -> Vec<(kar_topology::NodeId, kar_topology::NodeId)> {
    let edges = topo.edge_nodes();
    edges
        .iter()
        .flat_map(|&s| edges.iter().map(move |&d| (s, d)))
        .filter(|(s, d)| s != d)
        .collect()
}

/// Runs one probe per pair through `net` and returns each probe's
/// traced hop sequence, in injection order.
fn traced_paths(
    mut sim: kar_simnet::Sim,
    pairs: &[(kar_topology::NodeId, kar_topology::NodeId)],
) -> Vec<Vec<kar_topology::NodeId>> {
    for (i, &(src, dst)) in pairs.iter().enumerate() {
        sim.inject(src, dst, FlowId(i as u32), 0, PacketKind::Probe, 500);
    }
    sim.run_to_quiescence();
    assert_eq!(
        sim.stats().delivered,
        pairs.len() as u64,
        "every probe delivers on the intact topology"
    );
    (0..pairs.len())
        .map(|i| {
            let trace = sim.trace().get(i as u64).expect("probe traced");
            assert!(matches!(trace.fate, PacketFate::Delivered));
            trace.path.clone()
        })
        .collect()
}

fn assert_single_domain_hier_equals_flat(topo: Topology) {
    let pairs = edge_pairs(&topo);

    let mut flat = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(11)
        .tracing()
        .build();
    for &(src, dst) in &pairs {
        flat.encode(&EncodeRequest::new(src, dst))
            .expect("paper topologies are connected");
    }
    let flat_paths = traced_paths(flat.into_sim(), &pairs);

    let mut hier = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
        .seed(11)
        .tracing()
        .hierarchy(Arc::new(Partition::single(&topo)))
        .build();
    {
        let ctrl = hier.hier_controller_mut().expect("hierarchy enabled");
        for &(src, dst) in &pairs {
            let route = ctrl
                .install(&topo, src, dst, &Protection::None)
                .expect("paper topologies are connected");
            assert_eq!(route.reencodes(), 0, "one domain has no boundaries");
        }
    }
    let stats = hier.hier_stats().expect("hierarchy enabled");
    let hier_paths = traced_paths(hier.into_sim(), &pairs);

    assert_eq!(
        stats
            .boundary_stamps
            .load(std::sync::atomic::Ordering::Relaxed),
        0,
        "no boundary links, so no re-stamps"
    );
    for (i, (f, h)) in flat_paths.iter().zip(&hier_paths).enumerate() {
        let (src, dst) = pairs[i];
        assert_eq!(
            f, h,
            "hier and flat walked different paths for {src} -> {dst}"
        );
    }
}

#[test]
fn single_domain_hier_walks_flat_paths_on_topo15() {
    assert_single_domain_hier_equals_flat(topo15::build());
}

#[test]
fn single_domain_hier_walks_flat_paths_on_rnp28() {
    assert_single_domain_hier_equals_flat(rnp28::build());
}
