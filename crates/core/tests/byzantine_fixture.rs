//! Pinned Byzantine fixture (the adversary suite's verification
//! anchor): one compromised switch on topo15 — SW7, squarely on the
//! AS1 → AS3 primary path — misforwards every packet out a random
//! healthy port, for each deflection technique.
//!
//! Every traced packet is proven to stay inside the honest move
//! relation *except* at the compromised switch:
//!
//! * packets that never touch SW7 must be full trajectories of
//!   [`check_trajectory`];
//! * for packets that do, the prefix up to the first SW7 visit must be
//!   an explicable trajectory prefix, and the suffix after the *last*
//!   SW7 visit — beginning at whatever switch the adversary threw the
//!   packet to, entering on the (wrong) port that faces SW7 — must
//!   satisfy the move relation from that ingress state via
//!   [`check_trajectory_from`], ending the way the engine recorded.
//!
//! The edge reroute policy is `Drop` so wrong-edge arrivals terminate
//! traces exactly like the verifier's `WrongEdge` terminal, and the
//! per-technique outcome counts are pinned: the fixture is a seeded,
//! deterministic scenario, so any drift in the adversary interposition
//! or the move relation shows up as a diff here.

use kar::verify::{check_trajectory, check_trajectory_from, TrajectoryEnd};
use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection, ReroutePolicy};
use kar_simnet::{Behavior, DropReason, FlowId, PacketFate, PacketKind, SimTime};
use kar_topology::{topo15, NodeId, Topology};
use std::collections::HashSet;

const PROBES: u64 = 40;
const SEED: u64 = 5;

fn fate_to_end(fate: &PacketFate) -> TrajectoryEnd {
    match fate {
        PacketFate::Delivered => TrajectoryEnd::Delivered,
        PacketFate::Dropped(DropReason::Misdelivery) => TrajectoryEnd::WrongEdge,
        PacketFate::Dropped(
            DropReason::PortDown | DropReason::NoRoute | DropReason::ResidueOutOfRange,
        ) => TrajectoryEnd::ForcedDrop,
        PacketFate::Dropped(DropReason::TtlExpired) => TrajectoryEnd::TtlExpired,
        PacketFate::Dropped(_) | PacketFate::InFlight | PacketFate::TruncatedAtSimEnd => {
            TrajectoryEnd::Truncated
        }
    }
}

/// Ports of `node` that face `from` — the candidate (wrong) ingress
/// ports of a packet the adversary pushed across a `from`–`node` link.
fn ports_facing(topo: &Topology, node: NodeId, from: NodeId) -> Vec<u64> {
    topo.neighbors(node)
        .filter(|&(_, _, w)| w == from)
        .map(|(p, _, _)| p)
        .collect()
}

/// Per-technique classification counts of the fixture.
#[derive(Debug, Default, PartialEq, Eq)]
struct Outcomes {
    /// Packets whose path never visits the compromised switch.
    clean: u64,
    /// Packets the adversary handled whose suffix re-entered the move
    /// relation at a core switch.
    rejoined: u64,
    /// Packets the adversary threw directly onto an edge host link.
    edge_exit: u64,
    delivered: u64,
    dropped: u64,
}

fn run_fixture(technique: DeflectionTechnique) -> Outcomes {
    let topo = topo15::build();
    let byz = topo.expect("SW7");
    let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
    let mut net = KarNetwork::builder(&topo, technique)
        .seed(SEED)
        .ttl(255)
        .tracing()
        .reroute(ReroutePolicy::Drop)
        .byzantine(byz, Behavior::Misforward)
        .build();
    let route = net
        .encode(&EncodeRequest::new(src, dst).with_protection(Protection::AutoFull))
        .expect("route installs")
        .route;
    let mut sim = net.into_sim();
    for i in 0..PROBES {
        sim.run_until(SimTime(i * 500_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
    }
    sim.run_to_quiescence();
    let stats = sim.stats();
    assert_eq!(stats.injected, PROBES);
    assert!(
        stats.byzantine_misforwards > 0,
        "{}: the compromised switch saw traffic",
        technique.label()
    );
    let failed: HashSet<kar_topology::LinkId> = HashSet::new();
    let mut out = Outcomes {
        delivered: stats.delivered,
        dropped: stats.dropped(),
        ..Outcomes::default()
    };
    for (id, trace) in sim.trace().iter() {
        let end = fate_to_end(&trace.fate);
        let label = technique.label();
        let Some(first) = trace.path.iter().position(|&n| n == byz) else {
            // Never touched the adversary: a plain honest trajectory.
            check_trajectory(
                &topo,
                &route,
                src,
                dst,
                technique,
                &failed,
                &trace.path,
                end,
            )
            .unwrap_or_else(|e| {
                panic!(
                    "{label} pkt {id} (clean): {e} (path {})",
                    trace.pretty(&topo)
                )
            });
            out.clean += 1;
            continue;
        };
        // The prefix up to the first adversary visit must be an
        // explicable trajectory prefix of the honest relation.
        check_trajectory(
            &topo,
            &route,
            src,
            dst,
            technique,
            &failed,
            &trace.path[..=first],
            TrajectoryEnd::Truncated,
        )
        .unwrap_or_else(|e| {
            panic!(
                "{label} pkt {id} (prefix): {e} (path {})",
                trace.pretty(&topo)
            )
        });
        // After the adversary's *last* touch the packet is back in
        // honest hands: the suffix must satisfy the move relation from
        // its (wrong) ingress state.
        let last = trace.path.iter().rposition(|&n| n == byz).unwrap();
        let Some(&next) = trace.path.get(last + 1) else {
            // Trace ends at the adversary (e.g. TTL expired there).
            out.rejoined += 1;
            continue;
        };
        if topo.switch_id(next).is_none() {
            // Thrown straight onto an edge host link: delivery if it
            // happens to be the destination, misdelivery otherwise.
            assert_eq!(
                last + 2,
                trace.path.len(),
                "{label} pkt {id}: edge terminates"
            );
            match trace.fate {
                PacketFate::Delivered => assert_eq!(next, dst, "{label} pkt {id}"),
                PacketFate::Dropped(DropReason::Misdelivery) => {
                    assert_ne!(next, dst, "{label} pkt {id}")
                }
                ref f => panic!("{label} pkt {id}: unexpected edge fate {f:?}"),
            }
            out.edge_exit += 1;
            continue;
        }
        // The adversary chose the port, so the packet's deflected flag
        // at `next` is whatever the tag carried — try both.
        let suffix = &trace.path[last + 1..];
        let explained = ports_facing(&topo, next, byz).into_iter().any(|in_port| {
            [false, true].into_iter().any(|deflected| {
                check_trajectory_from(
                    &topo, &route, dst, technique, &failed, in_port, deflected, suffix, end,
                )
                .is_ok()
            })
        });
        assert!(
            explained,
            "{label} pkt {id}: suffix after the adversary is outside the move \
             relation (path {}, fate {:?})",
            trace.pretty(&topo),
            trace.fate
        );
        out.rejoined += 1;
    }
    assert_eq!(
        out.clean + out.rejoined + out.edge_exit,
        PROBES,
        "{}: every packet classified",
        technique.label()
    );
    out
}

#[test]
fn misforward_suffixes_satisfy_the_move_relation_from_wrong_ingress() {
    for technique in DeflectionTechnique::ALL {
        let out = run_fixture(technique);
        assert_eq!(
            out.delivered + out.dropped,
            PROBES,
            "{technique:?}: {out:?}"
        );
        assert!(
            out.rejoined + out.edge_exit > 0,
            "{technique:?}: the adversary must have touched packets: {out:?}"
        );
    }
}

/// The pinned fixture: exact per-technique outcome counts for the
/// seeded scenario. Any change to the adversary interposition, the
/// forwarder, or the RNG discipline shifts these numbers — review the
/// diff deliberately rather than letting drift pass silently.
#[test]
fn fixture_outcomes_are_pinned() {
    let pinned: Vec<(DeflectionTechnique, Outcomes)> = DeflectionTechnique::ALL
        .into_iter()
        .map(|t| (t, run_fixture(t)))
        .collect();
    let rendered: Vec<String> = pinned
        .iter()
        .map(|(t, o)| {
            format!(
                "{}: clean={} rejoined={} edge_exit={} delivered={} dropped={}",
                t.label(),
                o.clean,
                o.rejoined,
                o.edge_exit,
                o.delivered,
                o.dropped
            )
        })
        .collect();
    // Striking and worth pinning: on topo15 even NoDeflection delivers
    // everything — the misforwarded packet lands on a switch whose
    // encoded residue steers it straight back on course. The Byzantine
    // threat here is stretch and reordering, not loss.
    let expected = [
        "NoDeflection: clean=0 rejoined=40 edge_exit=0 delivered=40 dropped=0",
        "HP: clean=0 rejoined=40 edge_exit=0 delivered=40 dropped=0",
        "AVP: clean=0 rejoined=40 edge_exit=0 delivered=40 dropped=0",
        "NIP: clean=0 rejoined=40 edge_exit=0 delivered=40 dropped=0",
    ];
    assert_eq!(rendered, expected, "pinned Byzantine fixture drifted");
}
