//! Pinned k=2 classification tables for topo15 and rnp28 — committed
//! regression fixtures, the two-failure generalization of the pinned
//! single-failure table in `verify.rs`.
//!
//! Each fixture row is one `(technique, protection)` cell of the
//! exhaustive sweep over every ordered edge pair × every 2-link failure
//! set. A forwarder, planner or verifier change that shifts any count
//! must be reviewed against these tables and re-blessed deliberately:
//!
//! ```text
//! KAR_BLESS=1 cargo test -p kar --test k2_classification -- --include-ignored
//! ```
//!
//! The `verify_resilience --k 2` CI gate pins the violation column of
//! the AutoFull rows; these fixtures pin every column of every row.

use kar::verify::{summarize_sets, verify_failure_sets};
use kar::{DeflectionTechnique, EncodingCache, Outcome, Protection};
use kar_topology::{rnp28, topo15, Topology};
use std::path::PathBuf;

fn table(topo: &Topology) -> String {
    let cache = EncodingCache::new();
    let mut out = String::from(
        "technique\tprotection\ttotal\tdelivered\twrong_edge\tttl_exceeded\tblackhole\tloop\tdisconnected\tviolations\n",
    );
    for (pname, protection) in [("none", Protection::None), ("full", Protection::AutoFull)] {
        for technique in DeflectionTechnique::ALL {
            let sweep =
                verify_failure_sets(topo, technique, &protection, &cache, 2).expect("sweep runs");
            let s = summarize_sets(&sweep.results);
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                technique.label(),
                pname,
                s.total,
                s.count(Outcome::Delivered),
                s.count(Outcome::WrongEdge),
                s.count(Outcome::TtlExceeded),
                s.count(Outcome::Blackhole),
                s.count(Outcome::Loop),
                s.disconnected,
                s.violations,
            ));
        }
    }
    out
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_pinned(topo: &Topology, fixture: &str) {
    let actual = table(topo);
    let path = fixture_path(fixture);
    if std::env::var("KAR_BLESS").is_ok() {
        std::fs::write(&path, &actual).expect("bless writes the fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let pinned = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (run with KAR_BLESS=1 to create)", path.display()));
    assert_eq!(
        actual, pinned,
        "k=2 classification drifted from {fixture}; if intentional, re-bless and review"
    );
}

#[test]
fn k2_topo15_classification_is_pinned() {
    check_pinned(&topo15::build(), "k2_topo15.tsv");
}

/// The rnp28 sweep is release-speed work (≈0.5 s release, tens of
/// seconds debug); CI runs it with `--ignored` in release.
#[test]
#[ignore = "release-speed sweep: run with --ignored (CI does)"]
fn k2_rnp28_classification_is_pinned() {
    check_pinned(&rnp28::build(), "k2_rnp28.tsv");
}

/// The headline the tables prove: hot-potato deflection under full
/// protection never loses a deliverable packet to *any* two-failure
/// set on either evaluation topology — random walking beats both
/// structured techniques on pure survival (at a latency cost the
/// ttl_exceeded column shows).
#[test]
fn hp_full_protection_survives_every_k2_set_on_topo15() {
    let topo = topo15::build();
    let cache = EncodingCache::new();
    let sweep = verify_failure_sets(
        &topo,
        DeflectionTechnique::HotPotato,
        &Protection::AutoFull,
        &cache,
        2,
    )
    .unwrap();
    for case in sweep.results.iter().filter(|c| !c.disconnected) {
        assert!(
            !matches!(case.report.outcome, Outcome::Blackhole | Outcome::Loop),
            "{:?} -> {:?} failing {:?}: {:?}",
            case.src,
            case.dst,
            case.failed,
            case.report.outcome
        );
    }
}
