//! SRLG failure sets through both failure channels (ISSUE satellite d):
//! a [`FaultPlan`] `srlg` clause applied to the live simulator and the
//! same link set handed to `verify_route` as a multi-failure set must
//! describe the same world — the compiled event train downs exactly the
//! group's links, the verifier classifies the compiled set identically
//! to the declared set, and the simulated run stays inside the
//! verifier's symbolic possibilities.

use kar::{
    verify_route, DeflectionTechnique, EncodeRequest, KarNetwork, Protection, ReroutePolicy,
};
use kar_simnet::{srlg_groups, DropReason, FaultPlan, FlowId, PacketKind, SimTime};
use kar_topology::{topo15, LinkId, Topology};
use std::collections::HashSet;

const PROBES: u64 = 12;

/// Every srlg clause compiles to exactly the group's links, all down at
/// the scheduled instant, no repairs when none were asked for.
#[test]
fn srlg_clause_compiles_to_exactly_the_group_links() {
    let topo = topo15::build();
    let groups = srlg_groups(&topo);
    assert!(!groups.is_empty(), "topo15 has shared-risk groups");
    for group in &groups {
        let plan = FaultPlan::new(1).srlg(group.clone(), SimTime::ZERO, None);
        let events = plan.compile(&topo);
        assert_eq!(events.len(), group.len());
        let compiled: HashSet<LinkId> = events
            .iter()
            .inspect(|ev| {
                assert!(!ev.up, "srlg without repair_after never schedules an up");
                assert_eq!(ev.at, SimTime::ZERO);
            })
            .map(|ev| ev.link)
            .collect();
        let declared: HashSet<LinkId> = group.iter().copied().collect();
        assert_eq!(compiled, declared);
    }
}

/// The verifier cannot tell which channel produced a failure set: the
/// classification of the links a `FaultPlan` compiles is byte-identical
/// to classifying the declared group directly.
#[test]
fn compiled_and_declared_failure_sets_classify_identically() {
    let topo = topo15::build();
    let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
    let cache = kar::EncodingCache::new();
    let primary = kar_topology::paths::bfs_shortest_path(&topo, src, dst).unwrap();
    let route = cache
        .encode_with_protection(&topo, primary, &Protection::AutoFull)
        .unwrap();
    for group in &srlg_groups(&topo) {
        let plan = FaultPlan::new(7).srlg(group.clone(), SimTime::ZERO, None);
        let compiled: HashSet<LinkId> = plan.compile(&topo).iter().map(|ev| ev.link).collect();
        let declared: HashSet<LinkId> = group.iter().copied().collect();
        for technique in DeflectionTechnique::ALL {
            let via_plan = verify_route(&topo, &route, src, dst, technique, &compiled);
            let direct = verify_route(&topo, &route, src, dst, technique, &declared);
            assert_eq!(
                format!("{via_plan:?}"),
                format!("{direct:?}"),
                "{}: classification depends on the failure channel",
                technique.label()
            );
        }
    }
}

fn run_with_plan(
    topo: &Topology,
    technique: DeflectionTechnique,
    group: &[LinkId],
    seed: u64,
) -> (kar_simnet::Stats, kar::VerifyReport) {
    let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
    let mut net = KarNetwork::builder(topo, technique)
        .seed(seed)
        .ttl(255)
        .reroute(ReroutePolicy::Drop)
        .build();
    let route = net
        .encode(&EncodeRequest::new(src, dst).with_protection(Protection::AutoFull))
        .expect("route installs")
        .route;
    let mut sim = net.into_sim();
    FaultPlan::new(seed)
        .srlg(group.to_vec(), SimTime::ZERO, None)
        .apply(&mut sim);
    for i in 0..PROBES {
        sim.run_until(SimTime(i * 500_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
    }
    sim.run_to_quiescence();
    let failed: HashSet<LinkId> = group.iter().copied().collect();
    let report = verify_route(topo, &route, src, dst, technique, &failed);
    (sim.stats().clone(), report)
}

/// Whole-group failures simulated through `FaultPlan::apply` never
/// escape the verifier's classification of the same link set: no
/// delivery where delivery is impossible, no core drop where no
/// blackhole exists, no TTL death over an acyclic state graph, and no
/// core loss at all under a lossless verdict.
#[test]
fn simulated_srlg_runs_stay_inside_the_symbolic_classification() {
    let topo = topo15::build();
    for group in &srlg_groups(&topo) {
        for technique in DeflectionTechnique::ALL {
            let (stats, report) = run_with_plan(&topo, technique, group, 23);
            let drop = |r: DropReason| stats.drops.get(&r).copied().unwrap_or(0);
            let label = technique.label();
            assert_eq!(stats.injected, PROBES);
            if !report.can_deliver {
                assert_eq!(stats.delivered, 0, "{label}: delivered the undeliverable");
            }
            if !report.can_blackhole {
                assert_eq!(
                    drop(DropReason::PortDown)
                        + drop(DropReason::NoRoute)
                        + drop(DropReason::ResidueOutOfRange),
                    0,
                    "{label}: core drop without a symbolic blackhole"
                );
            }
            if !report.has_cycle {
                assert_eq!(
                    drop(DropReason::TtlExpired),
                    0,
                    "{label}: TTL death over an acyclic state graph"
                );
            }
            if report.outcome.is_lossless() {
                assert_eq!(
                    stats.delivered + drop(DropReason::Misdelivery),
                    PROBES,
                    "{label}: lost packets under a lossless verdict"
                );
            }
        }
    }
}
