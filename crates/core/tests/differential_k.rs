//! Differential testing of the verifier against the real forwarder
//! (DESIGN.md invariant 10): on random connected topologies under
//! random two-link failure sets, every packet journey the simulator
//! records must be a trajectory of `verify_route`'s move relation,
//! packet for packet — and the run's aggregate fates must stay inside
//! what the symbolic report says is possible.
//!
//! The edge reroute policy is `Drop`, so a misdelivered packet's trace
//! ends at the wrong edge exactly like the verifier's `WrongEdge`
//! terminal (the default `Recompute` policy would re-encode it there
//! and keep going on a *different* route, which the single-route move
//! relation deliberately does not model).

use kar::verify::{check_trajectory, TrajectoryEnd};
use kar::{
    verify_route, DeflectionTechnique, EncodeRequest, KarNetwork, Protection, ReroutePolicy,
};
use kar_rns::IdStrategy;
use kar_simnet::{DropReason, FlowId, PacketFate, PacketKind, SimTime};
use kar_topology::gen::try_random_connected_hosts;
use kar_topology::{LinkId, LinkParams, Topology};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::HashSet;

const PROBES: u64 = 6;

fn fate_to_end(fate: &PacketFate) -> TrajectoryEnd {
    match fate {
        PacketFate::Delivered => TrajectoryEnd::Delivered,
        PacketFate::Dropped(DropReason::Misdelivery) => TrajectoryEnd::WrongEdge,
        PacketFate::Dropped(
            DropReason::PortDown | DropReason::NoRoute | DropReason::ResidueOutOfRange,
        ) => TrajectoryEnd::ForcedDrop,
        PacketFate::Dropped(DropReason::TtlExpired) => TrajectoryEnd::TtlExpired,
        // Queue overflows and in-flight link losses are engine effects
        // outside the move relation; the prefix walked so far must
        // still be explicable, which `Truncated` checks.
        PacketFate::Dropped(_) | PacketFate::InFlight | PacketFate::TruncatedAtSimEnd => {
            TrajectoryEnd::Truncated
        }
    }
}

fn check_one_technique(
    topo: &Topology,
    n: usize,
    technique: DeflectionTechnique,
    failed: &[LinkId],
    sim_seed: u64,
) -> Result<(), TestCaseError> {
    // `try_random_connected_hosts(n, ..)` attaches hosts H0..H{n-1},
    // one per core; route between the first and last.
    let src = topo.expect("H0");
    let dst = topo.expect(&format!("H{}", n - 1));
    let mut net = KarNetwork::builder(topo, technique)
        .seed(sim_seed)
        .ttl(255)
        .tracing()
        .reroute(ReroutePolicy::Drop)
        .build();
    let route =
        match net.encode(&EncodeRequest::new(src, dst).with_protection(Protection::AutoFull)) {
            Ok(outcome) => outcome.route,
            // Tiny random graphs can exhaust the ID headroom the protection
            // plan needs; that is an encoding limit, not a forwarding case.
            Err(_) => return Ok(()),
        };
    let mut sim = net.into_sim();
    for &l in failed {
        sim.schedule_link_down(SimTime::ZERO, l);
    }
    for i in 0..PROBES {
        sim.run_until(SimTime(i * 500_000));
        sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
    }
    sim.run_to_quiescence();

    let failed_set: HashSet<LinkId> = failed.iter().copied().collect();
    let report = verify_route(topo, &route, src, dst, technique, &failed_set);
    let stats = sim.stats();
    prop_assert_eq!(stats.injected, PROBES, "every probe enters the network");
    prop_assert_eq!(
        sim.trace().len() as u64,
        stats.injected,
        "every injected packet is traced"
    );
    // Aggregate fates must stay inside the symbolic possibilities.
    let drop = |r: DropReason| stats.drops.get(&r).copied().unwrap_or(0);
    if !report.can_deliver {
        prop_assert_eq!(
            stats.delivered,
            0,
            "{} delivered though the verifier says it cannot",
            technique.label()
        );
    }
    if !report.can_blackhole {
        let core_drops = drop(DropReason::PortDown)
            + drop(DropReason::NoRoute)
            + drop(DropReason::ResidueOutOfRange);
        prop_assert_eq!(
            core_drops,
            0,
            "{} core-dropped though the verifier says it cannot",
            technique.label()
        );
    }
    if !report.has_cycle {
        prop_assert_eq!(
            drop(DropReason::TtlExpired),
            0,
            "{} expired TTL though the state graph is acyclic",
            technique.label()
        );
    }
    // Packet for packet: every recorded journey is a trajectory of the
    // move relation, ending the way the verifier allows.
    for (id, trace) in sim.trace().iter() {
        let end = fate_to_end(&trace.fate);
        if let Err(e) = check_trajectory(
            topo,
            &route,
            src,
            dst,
            technique,
            &failed_set,
            &trace.path,
            end,
        ) {
            return Err(TestCaseError::fail(format!(
                "{} pkt {}: {} (path {}, fate {:?}, failed {:?})",
                technique.label(),
                id,
                e,
                trace.pretty(topo),
                trace.fate,
                failed
            )));
        }
    }
    Ok(())
}

/// Deterministic anchor for the property: one known-good random graph
/// where routes install, packets flow, and every fate class the mapping
/// handles actually appears across the techniques — proof the property
/// above is exercising real trajectories, not vacuously skipping.
#[test]
fn differential_check_exercises_real_trajectories() {
    let topo =
        try_random_connected_hosts(6, 3, 42, IdStrategy::SmallestPrimes, LinkParams::default())
            .expect("generation succeeds");
    let n_links = topo.link_count();
    let mut checked = 0u64;
    for fail_seed in 0..8u64 {
        let a = LinkId((fail_seed % n_links as u64) as usize);
        let b = LinkId(((fail_seed * 7 + 3) % n_links as u64) as usize);
        if a == b {
            continue;
        }
        for technique in DeflectionTechnique::ALL {
            check_one_technique(&topo, 6, technique, &[a, b], 17)
                .unwrap_or_else(|e| panic!("{e:?}"));
            checked += 1;
        }
    }
    assert!(checked >= 24, "expected to check many cases, got {checked}");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn forwarder_paths_are_move_relation_trajectories(
        n in 4usize..9,
        extra in 0usize..5,
        topo_seed in any::<u64>(),
        fail_seed in any::<u64>(),
        sim_seed in any::<u64>(),
    ) {
        let topo = match try_random_connected_hosts(
            n,
            extra,
            topo_seed,
            IdStrategy::SmallestPrimes,
            LinkParams::default(),
        ) {
            Ok(t) => t,
            Err(_) => return Ok(()), // allocator exhausted: not a forwarding case
        };
        let links = topo.link_count();
        prop_assume!(links >= 2);
        let a = LinkId((fail_seed % links as u64) as usize);
        let b = LinkId(((fail_seed >> 16) % links as u64) as usize);
        prop_assume!(a != b);
        for technique in DeflectionTechnique::ALL {
            check_one_technique(&topo, n, technique, &[a, b], sim_seed)?;
        }
    }
}
