//! The on-wire route-ID header (paper §2.3).
//!
//! A route ID is carried in a fixed-width packet-header field; Eq. 9
//! gives the width a field must have for a given switch-ID set. This
//! module packs a route ID into exactly that many bits (rounded up to
//! whole bytes on the wire, as a real shim header would be), refuses
//! IDs that do not fit — the paper's "if the route and all the designed
//! [protection paths] do not fit the Route ID field length, the source
//! routed path cannot be fully protected" — and unpacks on egress.

use crate::error::KarError;
use crate::route::EncodedRoute;
use kar_rns::{BigUint, RnsError};

/// A fixed-width route-ID header field.
///
/// # Examples
///
/// ```
/// use kar::RouteHeader;
/// use kar_rns::BigUint;
///
/// // The paper's protected example R = 660 needs an 11-bit field.
/// let header = RouteHeader::pack(&BigUint::from(660u64), 11)?;
/// assert_eq!(header.wire_bytes(), 2);
/// assert_eq!(header.unpack().to_u64(), Some(660));
/// # Ok::<(), kar::KarError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteHeader {
    /// Field width in bits.
    bits: u32,
    /// Big-endian field contents (`ceil(bits / 8)` bytes).
    bytes: Vec<u8>,
}

impl RouteHeader {
    /// Packs `route_id` into a `bits`-wide field.
    ///
    /// # Errors
    ///
    /// [`KarError::Rns`] (residue-out-of-range flavour) when the route
    /// ID needs more than `bits` bits — the §2.3 overflow case that
    /// forces partial protection.
    pub fn pack(route_id: &BigUint, bits: u32) -> Result<RouteHeader, KarError> {
        if route_id.bits() > bits {
            // Reuse the RNS error vocabulary: the value exceeds the field
            // modulus 2^bits.
            return Err(KarError::Rns(RnsError::ResidueOutOfRange {
                residue: route_id.bits() as u64,
                modulus: bits as u64,
            }));
        }
        let width = bits.div_ceil(8) as usize;
        let raw = route_id.to_bytes_be();
        let mut bytes = vec![0u8; width];
        bytes[width - raw.len()..].copy_from_slice(&raw);
        Ok(RouteHeader { bits, bytes })
    }

    /// Packs an encoded route into the *exact* field its basis needs
    /// (Eq. 9).
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed [`EncodedRoute`] (its ID is below
    /// the basis product by construction); the `Result` keeps the API
    /// uniform with [`RouteHeader::pack`].
    pub fn for_route(route: &EncodedRoute) -> Result<RouteHeader, KarError> {
        Self::pack(&route.route_id, route.bit_length().max(1))
    }

    /// Field width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Wire size in bytes (whole bytes, like a real shim header).
    pub fn wire_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The raw big-endian field.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Unpacks the route ID (egress side).
    pub fn unpack(&self) -> BigUint {
        BigUint::from_bytes_be(&self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteSpec;
    use kar_topology::topo15;

    #[test]
    fn packs_the_papers_examples() {
        // R = 44 over {4,7,11}: 9-bit field (M-1 = 307) → 2 wire bytes.
        let h = RouteHeader::pack(&BigUint::from(44u64), 9).unwrap();
        assert_eq!(h.bits(), 9);
        assert_eq!(h.wire_bytes(), 2);
        assert_eq!(h.as_bytes(), &[0x00, 0x2c]);
        assert_eq!(h.unpack().to_u64(), Some(44));
        // R = 660 over {4,7,11,5}: 11-bit field.
        let h = RouteHeader::pack(&BigUint::from(660u64), 11).unwrap();
        assert_eq!(h.unpack().to_u64(), Some(660));
    }

    #[test]
    fn rejects_overflow() {
        // 660 needs 10 bits; a 9-bit field cannot hold it.
        let err = RouteHeader::pack(&BigUint::from(660u64), 9).unwrap_err();
        assert!(matches!(err, KarError::Rns(_)));
    }

    #[test]
    fn round_trips_table1_routes() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let mut pairs = topo15::protection_pairs(&topo, &topo15::PARTIAL_PROTECTION);
        pairs.extend(topo15::protection_pairs(
            &topo,
            &topo15::FULL_EXTRA_PROTECTION,
        ));
        for (segments, expect_bits, expect_bytes) in [(Vec::new(), 15, 2), (pairs.clone(), 43, 6)] {
            let route =
                EncodedRoute::encode(&topo, &RouteSpec::protected(primary.clone(), segments))
                    .unwrap();
            let h = RouteHeader::for_route(&route).unwrap();
            assert_eq!(h.bits(), expect_bits);
            assert_eq!(h.wire_bytes(), expect_bytes);
            assert_eq!(h.unpack(), route.route_id);
        }
    }

    #[test]
    fn zero_route_id_packs() {
        let h = RouteHeader::pack(&BigUint::zero(), 1).unwrap();
        assert_eq!(h.wire_bytes(), 1);
        assert!(h.unpack().is_zero());
    }
}
