//! Static analysis of encoded routes: driven walks, protection coverage,
//! loop detection.
//!
//! These checks answer, *without running traffic*, the questions the
//! paper argues qualitatively: from which switches will a deflected
//! packet be driven to the destination (§2.1), and what fraction of a
//! failure's deflection candidates is covered by the protection paths
//! (the 1/3–2/3 argument of §3.1 and the 1/5–2/5 argument of §3.2)?

use crate::route::EncodedRoute;
use kar_topology::{LinkId, NodeId, Topology};
use std::collections::HashSet;

/// Result of following a route ID's residues hop by hop from a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrivenOutcome {
    /// The walk reached the destination in this many hops.
    Reached {
        /// Hops taken.
        hops: usize,
    },
    /// The walk hit a switch whose residue names an invalid or failed
    /// port (a deflecting switch would go random here).
    InvalidPort {
        /// Where the walk got stuck.
        at: NodeId,
    },
    /// The walk entered a cycle.
    Loop {
        /// First revisited node.
        at: NodeId,
    },
    /// The walk surfaced at an edge node other than the destination.
    WrongEdge {
        /// The edge reached.
        at: NodeId,
    },
}

impl DrivenOutcome {
    /// `true` when the walk reached the destination.
    pub fn reached(&self) -> bool {
        matches!(self, DrivenOutcome::Reached { .. })
    }
}

/// Follows `route`'s residues from `from` until `dst` (an edge node or
/// core switch), a dead end, or a loop. `failed` links are treated as
/// unavailable ports.
///
/// This is the *deterministic* part of forwarding — what a packet does
/// between deflections. A switch not folded into the route ID still
/// yields a residue; if that residue happens to name a healthy port the
/// walk follows it, exactly as a real KAR switch would (§2.1: a deflected
/// packet "may arrive at a node included in the route ID; from there, it
/// will follow the computed path once again").
pub fn driven_walk(
    topo: &Topology,
    route: &EncodedRoute,
    from: NodeId,
    dst: NodeId,
    failed: &HashSet<LinkId>,
) -> DrivenOutcome {
    driven_walk_from(topo, route, from, None, dst, failed)
}

/// [`driven_walk`], additionally modelling NIP's *forced* choices: when
/// a switch's residue is unusable but exactly one healthy core-facing
/// non-input port exists, NIP takes it deterministically — the paper's
/// "the only alternative path is to SW11 and, then, to SW17". `entered`
/// is the node the walk came from (excluded as NIP input), if any.
pub fn driven_walk_from(
    topo: &Topology,
    route: &EncodedRoute,
    from: NodeId,
    entered: Option<NodeId>,
    dst: NodeId,
    failed: &HashSet<LinkId>,
) -> DrivenOutcome {
    let mut visited = HashSet::new();
    let mut cur = from;
    let mut prev = entered;
    let mut hops = 0usize;
    loop {
        if cur == dst {
            return DrivenOutcome::Reached { hops };
        }
        let Some(switch_id) = topo.switch_id(cur) else {
            return DrivenOutcome::WrongEdge { at: cur };
        };
        if !visited.insert(cur) {
            return DrivenOutcome::Loop { at: cur };
        }
        let port = route.port_at(switch_id);
        let usable = |p: u64| {
            topo.node(cur)
                .ports
                .get(p as usize)
                .map(|l| !failed.contains(l))
                .unwrap_or(false)
        };
        let in_port = prev.and_then(|p| topo.port_towards(cur, p));
        let next_port = if usable(port) && Some(port) != in_port {
            port
        } else {
            // NIP would pick among healthy core non-input ports at
            // random; only a *unique* candidate is deterministic.
            let candidates: Vec<u64> = topo
                .neighbors(cur)
                .filter(|&(p, l, peer)| {
                    Some(p) != in_port && !failed.contains(&l) && topo.switch_id(peer).is_some()
                })
                .map(|(p, _, _)| p)
                .collect();
            match candidates.as_slice() {
                [only] => *only,
                _ => return DrivenOutcome::InvalidPort { at: cur },
            }
        };
        let link = topo.node(cur).ports[next_port as usize];
        prev = Some(cur);
        cur = topo.link(link).peer_of(cur);
        hops += 1;
    }
}

/// Coverage of one failure: which deflection candidates are driven to the
/// destination.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// The switch that deflects (upstream endpoint of the failed link).
    pub deflecting_switch: NodeId,
    /// Healthy next-hop candidates under NIP (input and failed port
    /// excluded).
    pub candidates: Vec<NodeId>,
    /// The subset of candidates from which the route ID drives the packet
    /// to the destination.
    pub driven: Vec<NodeId>,
}

impl CoverageReport {
    /// `driven.len() / candidates.len()`, `1.0` when there are no
    /// candidates (nothing to protect).
    pub fn fraction(&self) -> f64 {
        if self.candidates.is_empty() {
            return 1.0;
        }
        self.driven.len() as f64 / self.candidates.len() as f64
    }
}

/// Analyzes the coverage of a failure of `failed_link` for traffic
/// following `route` along `primary` toward `dst`.
///
/// The deflecting switch is the primary-path endpoint of the failed link
/// that the packet reaches first; its NIP candidates are its healthy
/// neighbours minus the input (previous primary node) and the failed
/// link.
///
/// # Panics
///
/// Panics if `failed_link` does not touch the primary path (no deflection
/// would happen there).
pub fn failure_coverage(
    topo: &Topology,
    route: &EncodedRoute,
    primary: &[NodeId],
    failed_link: LinkId,
    dst: NodeId,
) -> CoverageReport {
    let link = topo.link(failed_link);
    let pos = primary
        .iter()
        .position(|&n| link.touches(n) && topo.switch_id(n).is_some())
        .expect("failed link must touch a primary-path switch");
    let deflecting = primary[pos];
    let input = if pos > 0 {
        Some(primary[pos - 1])
    } else {
        None
    };
    let failed: HashSet<LinkId> = [failed_link].into_iter().collect();
    let mut candidates = Vec::new();
    let mut driven = Vec::new();
    for (_, l, peer) in topo.neighbors(deflecting) {
        if l == failed_link || Some(peer) == input {
            continue;
        }
        // Deflecting into an edge host is possible but pointless; the
        // paper's scenarios never include host ports as candidates.
        if topo.switch_id(peer).is_none() && peer != dst {
            continue;
        }
        candidates.push(peer);
        if driven_walk_from(topo, route, peer, Some(deflecting), dst, &failed).reached() {
            driven.push(peer);
        }
    }
    CoverageReport {
        deflecting_switch: deflecting,
        candidates,
        driven,
    }
}

/// [`failure_coverage`] generalized to a failure *set*: finds the first
/// primary-path switch whose primary next-hop link is in `failed` (the
/// switch that deflects first) and reports its NIP candidates and
/// driven subset under the *entire* set — a second failure can both
/// remove candidates and block a driven walk that a single-failure
/// analysis would count as covered.
///
/// Returns `None` when no primary next-hop link is failed: the packet
/// rides the primary path untouched and nothing deflects (other failed
/// links may still matter to deflected traffic, but there is no
/// deflecting switch to analyze).
pub fn failure_set_coverage(
    topo: &Topology,
    route: &EncodedRoute,
    primary: &[NodeId],
    failed: &HashSet<LinkId>,
    dst: NodeId,
) -> Option<CoverageReport> {
    let pos = (0..primary.len().saturating_sub(1)).find(|&i| {
        topo.switch_id(primary[i]).is_some()
            && topo
                .link_between(primary[i], primary[i + 1])
                .is_some_and(|l| failed.contains(&l))
    })?;
    let deflecting = primary[pos];
    let input = if pos > 0 {
        Some(primary[pos - 1])
    } else {
        None
    };
    let mut candidates = Vec::new();
    let mut driven = Vec::new();
    for (_, l, peer) in topo.neighbors(deflecting) {
        if failed.contains(&l) || Some(peer) == input {
            continue;
        }
        if topo.switch_id(peer).is_none() && peer != dst {
            continue;
        }
        candidates.push(peer);
        if driven_walk_from(topo, route, peer, Some(deflecting), dst, failed).reached() {
            driven.push(peer);
        }
    }
    Some(CoverageReport {
        deflecting_switch: deflecting,
        candidates,
        driven,
    })
}

/// One row of [`residue_table`]: what a route ID means at one switch.
#[derive(Debug, Clone)]
pub struct ResidueRow {
    /// The switch.
    pub node: NodeId,
    /// Its switch ID.
    pub switch_id: u64,
    /// `route_id mod switch_id`.
    pub residue: u64,
    /// The neighbour that port points at, if the port exists.
    pub next_hop: Option<NodeId>,
    /// Whether this switch was explicitly folded into the route ID.
    pub encoded: bool,
}

/// Decodes what `route` does at *every* core switch of the network —
/// the debugging view of a route ID. Switches not folded into the
/// basis still produce a (pseudo-random) residue; seeing where those
/// point explains every "accidental drive" in an experiment.
pub fn residue_table(topo: &Topology, route: &EncodedRoute) -> Vec<ResidueRow> {
    topo.core_nodes()
        .into_iter()
        .map(|node| {
            let switch_id = topo.switch_id(node).expect("core switch has an id");
            let residue = route.port_at(switch_id);
            let next_hop = topo
                .neighbors(node)
                .find(|&(p, _, _)| p == residue)
                .map(|(_, _, peer)| peer);
            ResidueRow {
                node,
                switch_id,
                residue,
                next_hop,
                encoded: route.contains_switch(switch_id),
            }
        })
        .collect()
}

/// Renders [`residue_table`] with names.
pub fn render_residue_table(topo: &Topology, route: &EncodedRoute) -> String {
    let mut out = format!(
        "route id {} ({} bits)
| switch | id | residue | next hop | encoded |
|---|---|---|---|---|
",
        route.route_id,
        route.bit_length()
    );
    for row in residue_table(topo, route) {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |
",
            topo.node(row.node).name,
            row.switch_id,
            row.residue,
            row.next_hop
                .map(|n| topo.node(n).name.clone())
                .unwrap_or_else(|| "-".into()),
            if row.encoded { "yes" } else { "" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteSpec;
    use kar_topology::topo15;

    fn route_with(
        protection: &[(&str, &str)],
    ) -> (kar_topology::Topology, EncodedRoute, Vec<NodeId>) {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let pairs = topo15::protection_pairs(&topo, protection);
        let route =
            EncodedRoute::encode(&topo, &RouteSpec::protected(primary.clone(), pairs)).unwrap();
        (topo, route, primary)
    }

    #[test]
    fn primary_path_walk_reaches_destination() {
        let (topo, route, _) = route_with(&[]);
        let out = driven_walk(
            &topo,
            &route,
            topo.expect("SW10"),
            topo.expect("AS3"),
            &HashSet::new(),
        );
        assert_eq!(out, DrivenOutcome::Reached { hops: 4 });
    }

    #[test]
    fn protected_branch_drives_to_destination() {
        let (topo, route, _) = route_with(&topo15::PARTIAL_PROTECTION);
        for name in ["SW11", "SW19", "SW31"] {
            let out = driven_walk(
                &topo,
                &route,
                topo.expect(name),
                topo.expect("AS3"),
                &HashSet::new(),
            );
            assert!(out.reached(), "{name}: {out:?}");
        }
    }

    #[test]
    fn paper_coverage_fractions_for_partial_protection() {
        let (topo, route, primary) = route_with(&topo15::PARTIAL_PROTECTION);
        let dst = topo.expect("AS3");
        // SW10-SW7 failure: 1 of 3 candidates protected (§3.1: "2/3 of
        // packets will be sent to switches SW17 or SW37").
        let cov = failure_coverage(
            &topo,
            &route,
            &primary,
            topo.expect_link("SW10", "SW7"),
            dst,
        );
        assert_eq!(cov.deflecting_switch, topo.expect("SW10"));
        assert_eq!(cov.candidates.len(), 3);
        assert_eq!(cov.driven.len(), 1);
        assert!((cov.fraction() - 1.0 / 3.0).abs() < 1e-12);
        // SW7-SW13 and SW13-SW29: fully enclosed.
        for (a, b) in [("SW7", "SW13"), ("SW13", "SW29")] {
            let cov = failure_coverage(&topo, &route, &primary, topo.expect_link(a, b), dst);
            assert_eq!(cov.fraction(), 1.0, "{a}-{b}: {cov:?}");
        }
    }

    #[test]
    fn full_protection_covers_everything() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let mut pairs = topo15::protection_pairs(&topo, &topo15::PARTIAL_PROTECTION);
        pairs.extend(topo15::protection_pairs(
            &topo,
            &topo15::FULL_EXTRA_PROTECTION,
        ));
        let route =
            EncodedRoute::encode(&topo, &RouteSpec::protected(primary.clone(), pairs)).unwrap();
        let dst = topo.expect("AS3");
        for (a, b) in topo15::FAILURE_LOCATIONS {
            let cov = failure_coverage(&topo, &route, &primary, topo.expect_link(a, b), dst);
            assert_eq!(cov.fraction(), 1.0, "{a}-{b}: {cov:?}");
        }
    }

    #[test]
    fn unprotected_sw7_failure_has_no_driven_candidates() {
        let (topo, route, primary) = route_with(&[]);
        let dst = topo.expect("AS3");
        let cov = failure_coverage(
            &topo,
            &route,
            &primary,
            topo.expect_link("SW7", "SW13"),
            dst,
        );
        // Candidates SW11 and SW19 exist but nothing drives them (unless a
        // residue accidentally points the right way — with these IDs it
        // does not).
        assert_eq!(cov.candidates.len(), 2);
        assert!(cov.fraction() < 1.0);
    }

    #[test]
    fn walk_detects_loops_and_wrong_edges() {
        let (topo, route, _) = route_with(&[]);
        // Walking toward a node that is not on any residue path must end
        // somewhere recognizable (loop, invalid port, or wrong edge).
        let out = driven_walk(
            &topo,
            &route,
            topo.expect("SW43"),
            topo.expect("AS3"),
            &HashSet::new(),
        );
        assert!(!out.reached() || matches!(out, DrivenOutcome::Reached { .. }));
        // A walk that starts at the wrong edge reports it.
        let out = driven_walk(
            &topo,
            &route,
            topo.expect("AS2"),
            topo.expect("AS3"),
            &HashSet::new(),
        );
        assert_eq!(
            out,
            DrivenOutcome::WrongEdge {
                at: topo.expect("AS2")
            }
        );
    }

    #[test]
    fn set_coverage_agrees_with_single_failure_coverage() {
        let (topo, route, primary) = route_with(&topo15::PARTIAL_PROTECTION);
        let dst = topo.expect("AS3");
        for (a, b) in [("SW10", "SW7"), ("SW7", "SW13"), ("SW13", "SW29")] {
            let link = topo.expect_link(a, b);
            let single = failure_coverage(&topo, &route, &primary, link, dst);
            let set: HashSet<LinkId> = [link].into_iter().collect();
            let multi = failure_set_coverage(&topo, &route, &primary, &set, dst)
                .unwrap_or_else(|| panic!("{a}-{b} is a primary link"));
            assert_eq!(multi.deflecting_switch, single.deflecting_switch, "{a}-{b}");
            assert_eq!(multi.candidates, single.candidates, "{a}-{b}");
            assert_eq!(multi.driven, single.driven, "{a}-{b}");
        }
    }

    #[test]
    fn second_failure_shrinks_candidates_and_coverage() {
        let (topo, route, primary) = route_with(&topo15::PARTIAL_PROTECTION);
        let dst = topo.expect("AS3");
        let primary_cut = topo.expect_link("SW10", "SW7");
        // Alone, SW10 deflects with 3 candidates (1 driven).
        let alone: HashSet<LinkId> = [primary_cut].into_iter().collect();
        let base = failure_set_coverage(&topo, &route, &primary, &alone, dst).unwrap();
        assert_eq!(base.candidates.len(), 3);
        // Also cutting SW10-SW17 removes one candidate entirely.
        let both: HashSet<LinkId> = [primary_cut, topo.expect_link("SW10", "SW17")]
            .into_iter()
            .collect();
        let cov = failure_set_coverage(&topo, &route, &primary, &both, dst).unwrap();
        assert_eq!(cov.deflecting_switch, topo.expect("SW10"));
        assert_eq!(cov.candidates.len(), 2, "{cov:?}");
        assert!(cov.candidates.len() < base.candidates.len());
    }

    #[test]
    fn off_primary_failure_set_has_no_deflecting_switch() {
        let (topo, route, primary) = route_with(&[]);
        let dst = topo.expect("AS3");
        let off: HashSet<LinkId> = [topo.expect_link("SW11", "SW19")].into_iter().collect();
        assert!(failure_set_coverage(&topo, &route, &primary, &off, dst).is_none());
    }

    #[test]
    fn residue_table_marks_encoded_switches() {
        let (topo, route, _) = route_with(&topo15::PARTIAL_PROTECTION);
        let table = residue_table(&topo, &route);
        assert_eq!(table.len(), topo.core_nodes().len());
        let row = |name: &str| {
            table
                .iter()
                .find(|r| r.node == topo.expect(name))
                .unwrap()
                .clone()
        };
        // Encoded switches point exactly where the spec says.
        let sw7 = row("SW7");
        assert!(sw7.encoded);
        assert_eq!(sw7.next_hop, Some(topo.expect("SW13")));
        let sw31 = row("SW31");
        assert!(sw31.encoded);
        assert_eq!(sw31.next_hop, Some(topo.expect("SW29")));
        // Non-encoded switches have *some* residue, possibly invalid.
        let sw43 = row("SW43");
        assert!(!sw43.encoded);
        let rendered = render_residue_table(&topo, &route);
        assert!(rendered.contains("| SW7 | 7 |"));
    }

    #[test]
    fn failed_link_blocks_the_walk() {
        let (topo, route, _) = route_with(&[]);
        let failed: HashSet<LinkId> = [topo.expect_link("SW7", "SW13")].into_iter().collect();
        let out = driven_walk(
            &topo,
            &route,
            topo.expect("SW10"),
            topo.expect("AS3"),
            &failed,
        );
        assert_eq!(
            out,
            DrivenOutcome::InvalidPort {
                at: topo.expect("SW7")
            }
        );
    }
}
