//! The canonical on-the-wire route-ID serialization (paper §2.3).
//!
//! A route ID is carried in a packet-header field; Eq. 9 gives the
//! width a *fixed* field must have for a given switch-ID set. Before
//! this module existed the repo had three private spellings of "route
//! ID to bytes" waiting to happen (simulator tag stamping, service
//! payloads, test fixtures). Now there is exactly one:
//!
//! * [`RouteHeader`] — the §2.3 fixed-width field: packs a route ID
//!   into exactly the bits its basis needs (rounded up to whole bytes
//!   on the wire, as a real shim header would be), refuses IDs that do
//!   not fit — the paper's "if the route and all the designed
//!   [protection paths] do not fit the Route ID field length, the
//!   source routed path cannot be fully protected" — and unpacks on
//!   egress.
//! * [`WireMode`] — the two self-delimiting framings of a header:
//!   [`WireMode::Fixed`] carries the declared field width (hardware
//!   shim-header shaped), [`WireMode::Varint`] carries a
//!   length-prefixed minimal encoding (control-plane shaped, for
//!   payloads where route IDs of many sizes share a stream).
//! * [`RouteHeader::to_wire`] / [`RouteHeader::from_wire`] — the one
//!   byte layout shared by the simulator's packet path, the
//!   `kar-service` daemon and the `kar_service_load` client. The
//!   loopback test in `crates/service` asserts the daemon's bytes are
//!   identical to the in-process ones for every route it checks.
//!
//! # Wire layouts
//!
//! ```text
//! Fixed:  [0x00][bits: u16 BE][field: ceil(bits/8) bytes, BE]
//! Varint: [0x01][len: uvarint][magnitude: len bytes, BE, minimal]
//! ```
//!
//! `uvarint` is LEB128: little-endian 7-bit groups, high bit set on
//! every byte except the last. Decoding is strict: unused high bits of
//! a fixed field must be zero, a varint magnitude must not carry
//! leading zero bytes (zero itself is `len = 0`), and over-long LEB128
//! encodings are rejected — for any byte string at most one
//! `(header, consumed)` parse exists.

use crate::error::KarError;
use crate::route::EncodedRoute;
use kar_rns::BigUint;
use std::fmt;

/// Widest fixed field [`RouteHeader::from_wire`] accepts (the width
/// rides in a `u16`). `BENCH_scale.json`'s deepest committed sweep
/// needs 2309 bits; 65535 leaves room for every topology the campaign
/// generator can express.
pub const MAX_FIELD_BITS: u32 = u16::MAX as u32;

/// How a [`RouteHeader`] is framed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireMode {
    /// The §2.3 shim header: declared field width plus the padded
    /// big-endian field. What the dataplane carries.
    Fixed,
    /// Length-prefixed minimal magnitude. What control-plane payloads
    /// carry when many differently-sized route IDs share a stream.
    Varint,
}

impl WireMode {
    /// The discriminant byte leading a serialized header.
    pub fn as_byte(self) -> u8 {
        match self {
            WireMode::Fixed => 0,
            WireMode::Varint => 1,
        }
    }

    /// Parses a discriminant byte.
    pub fn from_byte(b: u8) -> Option<WireMode> {
        match b {
            0 => Some(WireMode::Fixed),
            1 => Some(WireMode::Varint),
            _ => None,
        }
    }
}

impl fmt::Display for WireMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireMode::Fixed => write!(f, "fixed"),
            WireMode::Varint => write!(f, "varint"),
        }
    }
}

/// Why a byte string failed to parse as a serialized route header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the layout did.
    Truncated {
        /// Bytes the layout needed from the failing position on.
        needed: usize,
        /// Bytes actually available there.
        have: usize,
    },
    /// Unknown mode discriminant byte.
    BadMode(u8),
    /// A fixed field declared more than [`MAX_FIELD_BITS`] bits (or
    /// zero bits — a field narrower than one bit cannot carry an ID).
    BadFieldWidth {
        /// The declared width.
        bits: u32,
    },
    /// The carried value does not fit the declared field: unused high
    /// bits of a fixed field were set.
    Overflow {
        /// Bits the carried value needs.
        needed_bits: u32,
        /// Bits the field declares.
        field_bits: u32,
    },
    /// A non-minimal encoding: leading zero magnitude byte, or an
    /// over-long LEB128 length.
    NonCanonical,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more byte(s), have {have}"
                )
            }
            WireError::BadMode(b) => write!(f, "unknown wire mode {b:#04x}"),
            WireError::BadFieldWidth { bits } => {
                write!(f, "bad field width: {bits} bits")
            }
            WireError::Overflow {
                needed_bits,
                field_bits,
            } => write!(
                f,
                "value needs {needed_bits} bits but the field declares {field_bits}"
            ),
            WireError::NonCanonical => write!(f, "non-canonical encoding"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends `v` as LEB128 (7 bits per byte, continuation high bit).
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 value, returning `(value, bytes consumed)`.
/// Strict: over-long encodings (a redundant trailing `0x00` group or
/// more than 10 bytes) and truncated buffers are rejected.
pub fn read_uvarint(buf: &[u8]) -> Result<(u64, usize), WireError> {
    let mut value: u64 = 0;
    for (i, &byte) in buf.iter().enumerate() {
        if i == 10 {
            return Err(WireError::NonCanonical);
        }
        let group = (byte & 0x7f) as u64;
        // The 10th byte may only carry the top bit of a u64.
        if i == 9 && group > 1 {
            return Err(WireError::NonCanonical);
        }
        value |= group << (7 * i as u32);
        if byte & 0x80 == 0 {
            // Minimality: a continuation followed by an all-zero final
            // group re-encodes a shorter value.
            if i > 0 && group == 0 {
                return Err(WireError::NonCanonical);
            }
            return Ok((value, i + 1));
        }
    }
    Err(WireError::Truncated { needed: 1, have: 0 })
}

/// A fixed-width route-ID header field.
///
/// # Examples
///
/// ```
/// use kar::RouteHeader;
/// use kar_rns::BigUint;
///
/// // The paper's protected example R = 660 needs an 11-bit field.
/// let header = RouteHeader::pack(&BigUint::from(660u64), 11)?;
/// assert_eq!(header.wire_bytes(), 2);
/// assert_eq!(header.unpack().to_u64(), Some(660));
/// # Ok::<(), kar::KarError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteHeader {
    /// Field width in bits.
    bits: u32,
    /// Big-endian field contents (`ceil(bits / 8)` bytes).
    bytes: Vec<u8>,
}

impl RouteHeader {
    /// Packs `route_id` into a `bits`-wide field.
    ///
    /// # Errors
    ///
    /// [`KarError::HeaderOverflow`] when the route ID needs more than
    /// `bits` bits — the §2.3 overflow case that forces partial
    /// protection.
    pub fn pack(route_id: &BigUint, bits: u32) -> Result<RouteHeader, KarError> {
        if route_id.bits() > bits {
            return Err(KarError::HeaderOverflow {
                needed_bits: route_id.bits(),
                field_bits: bits,
            });
        }
        let width = bits.div_ceil(8) as usize;
        let raw = route_id.to_bytes_be();
        let mut bytes = vec![0u8; width];
        bytes[width - raw.len()..].copy_from_slice(&raw);
        Ok(RouteHeader { bits, bytes })
    }

    /// Packs an encoded route into the *exact* field its basis needs
    /// (Eq. 9).
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed [`EncodedRoute`] (its ID is below
    /// the basis product by construction); the `Result` keeps the API
    /// uniform with [`RouteHeader::pack`].
    pub fn for_route(route: &EncodedRoute) -> Result<RouteHeader, KarError> {
        Self::pack(&route.route_id, route.bit_length().max(1))
    }

    /// Field width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Wire size in bytes of the bare field (whole bytes, like a real
    /// shim header; framing bytes of [`RouteHeader::to_wire`] not
    /// included).
    pub fn wire_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The raw big-endian field.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Unpacks the route ID (egress side).
    pub fn unpack(&self) -> BigUint {
        BigUint::from_bytes_be(&self.bytes)
    }

    /// Serializes self-delimitingly in the given mode (see the module
    /// docs for the layouts). `Fixed` preserves the declared field
    /// width; `Varint` carries only the value — decoding it yields a
    /// header exactly as wide as the value needs.
    pub fn to_wire(&self, mode: WireMode) -> Vec<u8> {
        match mode {
            WireMode::Fixed => {
                let mut out = Vec::with_capacity(3 + self.bytes.len());
                out.push(mode.as_byte());
                out.extend_from_slice(&(self.bits as u16).to_be_bytes());
                out.extend_from_slice(&self.bytes);
                out
            }
            WireMode::Varint => {
                let raw = self.unpack().to_bytes_be();
                let magnitude: &[u8] = if raw == [0] { &[] } else { &raw };
                let mut out = Vec::with_capacity(2 + magnitude.len());
                out.push(mode.as_byte());
                write_uvarint(&mut out, magnitude.len() as u64);
                out.extend_from_slice(magnitude);
                out
            }
        }
    }

    /// Parses one serialized header from the front of `buf`, returning
    /// it with the number of bytes consumed. Strict (see module docs):
    /// every byte string has at most one parse.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation, unknown mode, bad field width,
    /// value/field overflow, or a non-canonical encoding.
    pub fn from_wire(buf: &[u8]) -> Result<(RouteHeader, usize), WireError> {
        let &mode = buf
            .first()
            .ok_or(WireError::Truncated { needed: 1, have: 0 })?;
        match WireMode::from_byte(mode).ok_or(WireError::BadMode(mode))? {
            WireMode::Fixed => {
                let width = buf.get(1..3).ok_or(WireError::Truncated {
                    needed: 2,
                    have: buf.len() - 1,
                })?;
                let bits = u16::from_be_bytes([width[0], width[1]]) as u32;
                if bits == 0 {
                    return Err(WireError::BadFieldWidth { bits });
                }
                let len = bits.div_ceil(8) as usize;
                let field = buf.get(3..3 + len).ok_or(WireError::Truncated {
                    needed: len,
                    have: buf.len() - 3,
                })?;
                let value = BigUint::from_bytes_be(field);
                if value.bits() > bits {
                    return Err(WireError::Overflow {
                        needed_bits: value.bits(),
                        field_bits: bits,
                    });
                }
                Ok((
                    RouteHeader {
                        bits,
                        bytes: field.to_vec(),
                    },
                    3 + len,
                ))
            }
            WireMode::Varint => {
                let (len, consumed) = read_uvarint(&buf[1..])?;
                let len = usize::try_from(len).map_err(|_| WireError::NonCanonical)?;
                let start = 1 + consumed;
                let magnitude = buf.get(start..start + len).ok_or(WireError::Truncated {
                    needed: len,
                    have: buf.len() - start,
                })?;
                if magnitude.first() == Some(&0) {
                    return Err(WireError::NonCanonical);
                }
                let value = BigUint::from_bytes_be(magnitude);
                let header = RouteHeader::pack(&value, value.bits().max(1))
                    .expect("a value always fits its own bit count");
                Ok((header, start + len))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteSpec;
    use kar_topology::topo15;

    #[test]
    fn packs_the_papers_examples() {
        // R = 44 over {4,7,11}: 9-bit field (M-1 = 307) → 2 wire bytes.
        let h = RouteHeader::pack(&BigUint::from(44u64), 9).unwrap();
        assert_eq!(h.bits(), 9);
        assert_eq!(h.wire_bytes(), 2);
        assert_eq!(h.as_bytes(), &[0x00, 0x2c]);
        assert_eq!(h.unpack().to_u64(), Some(44));
        // R = 660 over {4,7,11,5}: 11-bit field.
        let h = RouteHeader::pack(&BigUint::from(660u64), 11).unwrap();
        assert_eq!(h.unpack().to_u64(), Some(660));
    }

    #[test]
    fn rejects_overflow_with_the_dedicated_variant() {
        // 660 needs 10 bits; a 9-bit field cannot hold it.
        let err = RouteHeader::pack(&BigUint::from(660u64), 9).unwrap_err();
        assert_eq!(
            err,
            KarError::HeaderOverflow {
                needed_bits: 10,
                field_bits: 9
            }
        );
        assert!(err.to_string().contains("10 bits"), "{err}");
    }

    #[test]
    fn round_trips_table1_routes() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let mut pairs = topo15::protection_pairs(&topo, &topo15::PARTIAL_PROTECTION);
        pairs.extend(topo15::protection_pairs(
            &topo,
            &topo15::FULL_EXTRA_PROTECTION,
        ));
        for (segments, expect_bits, expect_bytes) in [(Vec::new(), 15, 2), (pairs.clone(), 43, 6)] {
            let route =
                EncodedRoute::encode(&topo, &RouteSpec::protected(primary.clone(), segments))
                    .unwrap();
            let h = RouteHeader::for_route(&route).unwrap();
            assert_eq!(h.bits(), expect_bits);
            assert_eq!(h.wire_bytes(), expect_bytes);
            assert_eq!(h.unpack(), route.route_id);
        }
    }

    #[test]
    fn zero_route_id_packs() {
        let h = RouteHeader::pack(&BigUint::zero(), 1).unwrap();
        assert_eq!(h.wire_bytes(), 1);
        assert!(h.unpack().is_zero());
    }

    #[test]
    fn uvarint_round_trips_and_is_strict() {
        for v in [0u64, 1, 127, 128, 300, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            assert_eq!(read_uvarint(&buf).unwrap(), (v, buf.len()), "v={v}");
            // Self-delimiting: trailing junk is not consumed.
            buf.push(0xaa);
            assert_eq!(read_uvarint(&buf).unwrap(), (v, buf.len() - 1));
        }
        // Truncated continuation.
        assert!(matches!(
            read_uvarint(&[0x80]),
            Err(WireError::Truncated { .. })
        ));
        // Over-long: 128 spelled with a redundant zero group.
        assert_eq!(
            read_uvarint(&[0x80, 0x80, 0x00]),
            Err(WireError::NonCanonical)
        );
        // 11-byte encodings cannot be u64s.
        assert_eq!(read_uvarint(&[0xff; 11]), Err(WireError::NonCanonical));
    }

    #[test]
    fn fixed_wire_round_trips_the_full_header() {
        let h = RouteHeader::pack(&BigUint::from(660u64), 43).unwrap();
        let wire = h.to_wire(WireMode::Fixed);
        assert_eq!(wire[0], 0);
        assert_eq!(wire.len(), 3 + h.wire_bytes());
        let (back, consumed) = RouteHeader::from_wire(&wire).unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(back, h, "fixed mode preserves the declared width");
    }

    #[test]
    fn varint_wire_round_trips_the_value() {
        for v in [0u64, 1, 44, 660, u64::MAX] {
            let value = BigUint::from(v);
            let h = RouteHeader::pack(&value, value.bits().max(1) + 5).unwrap();
            let wire = h.to_wire(WireMode::Varint);
            let (back, consumed) = RouteHeader::from_wire(&wire).unwrap();
            assert_eq!(consumed, wire.len());
            assert_eq!(back.unpack(), value);
            assert_eq!(back.bits(), value.bits().max(1), "varint forgets padding");
        }
    }

    #[test]
    fn from_wire_rejects_malformed_frames() {
        assert!(matches!(
            RouteHeader::from_wire(&[]),
            Err(WireError::Truncated { .. })
        ));
        assert_eq!(RouteHeader::from_wire(&[9]), Err(WireError::BadMode(9)));
        // Fixed: declared width 0.
        assert_eq!(
            RouteHeader::from_wire(&[0, 0, 0]),
            Err(WireError::BadFieldWidth { bits: 0 })
        );
        // Fixed: field truncated (9 bits needs 2 bytes).
        assert!(matches!(
            RouteHeader::from_wire(&[0, 0, 9, 0x2c]),
            Err(WireError::Truncated { .. })
        ));
        // Fixed: unused high bits set (9-bit field carrying 0x3ff).
        assert_eq!(
            RouteHeader::from_wire(&[0, 0, 9, 0x03, 0xff]),
            Err(WireError::Overflow {
                needed_bits: 10,
                field_bits: 9
            })
        );
        // Varint: leading zero magnitude byte.
        assert_eq!(
            RouteHeader::from_wire(&[1, 2, 0x00, 0x2c]),
            Err(WireError::NonCanonical)
        );
        // Varint: magnitude truncated.
        assert!(matches!(
            RouteHeader::from_wire(&[1, 3, 0x2c]),
            Err(WireError::Truncated { .. })
        ));
    }
}
