//! Multipath KAR routing (paper §5 future work: "explore the use of
//! multiple paths … in the case of redundant links").
//!
//! KAR cannot encode two output ports for one switch in a single route
//! ID (the Fig. 8 constraint), but nothing stops the edge from holding
//! *several route IDs* over disjoint switch sets and spreading flows
//! across them. [`edge_disjoint_paths`] finds link-disjoint paths;
//! [`MultipathEdge`] installs one encoded route per path and hashes each
//! flow onto one of them, so a single link failure only disturbs the
//! flows on the affected path.

use crate::error::KarError;
use crate::protection::Protection;
use crate::route::EncodedRoute;
use kar_simnet::{EdgeLogic, Packet, RerouteDecision, RouteTag, SimTime};
use kar_topology::{LinkId, NodeId, PortIx, Topology};
use std::collections::{HashMap, HashSet, VecDeque};

/// Finds up to `k` paths from `src` to `dst` whose *core* links are
/// pairwise disjoint (greedy: repeated BFS, removing the core links of
/// each accepted path). Host access links are shared by construction —
/// a single-homed edge has no alternative for its first hop.
///
/// Returns at least one path when the nodes are connected; fewer than
/// `k` when the topology runs out of disjoint core links.
pub fn edge_disjoint_paths(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    k: usize,
) -> Vec<Vec<NodeId>> {
    let mut used: HashSet<LinkId> = HashSet::new();
    let mut out: Vec<Vec<NodeId>> = Vec::new();
    while out.len() < k {
        let Some(path) = bfs_avoiding_links(topo, src, dst, &used) else {
            break;
        };
        if out.contains(&path) {
            // BFS re-found an accepted path, which happens exactly when
            // that path added no core-core link to the avoid set (e.g. a
            // one-switch path, all of whose links touch a host). Widening
            // the avoid set with *all* of its links forces the next BFS
            // onto genuinely different links; giving up here used to end
            // the search even when further disjoint paths existed.
            let mut widened = false;
            for w in path.windows(2) {
                if let Some(l) = topo.link_between(w[0], w[1]) {
                    widened |= used.insert(l);
                }
            }
            if !widened {
                break; // the duplicate has nothing left to exclude
            }
            continue;
        }
        for w in path.windows(2) {
            let both_core = topo.switch_id(w[0]).is_some() && topo.switch_id(w[1]).is_some();
            if both_core {
                if let Some(l) = topo.link_between(w[0], w[1]) {
                    used.insert(l);
                }
            }
        }
        out.push(path);
    }
    out
}

fn bfs_avoiding_links(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    avoid: &HashSet<LinkId>,
) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; topo.node_count()];
    let mut seen = vec![false; topo.node_count()];
    seen[src.0] = true;
    let mut q = VecDeque::from([src]);
    while let Some(n) = q.pop_front() {
        let mut adj: Vec<(LinkId, NodeId)> = topo.neighbors(n).map(|(_, l, p)| (l, p)).collect();
        adj.sort_by_key(|&(_, p)| p);
        for (l, peer) in adj {
            if avoid.contains(&l) || seen[peer.0] {
                continue;
            }
            seen[peer.0] = true;
            prev[peer.0] = Some(n);
            if peer == dst {
                let mut path = vec![dst];
                let mut cur = dst;
                while cur != src {
                    cur = prev[cur.0].expect("predecessor chain intact");
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            q.push_back(peer);
        }
    }
    None
}

/// Edge logic holding several route IDs per `(src, dst)` pair and
/// assigning each flow to one of them by hash.
///
/// # Examples
///
/// ```
/// use kar::{MultipathEdge, Protection};
/// use kar_topology::topo15;
///
/// let topo = topo15::build();
/// let mut edge = MultipathEdge::new();
/// let n = edge.install(
///     &topo,
///     topo.expect("AS1"),
///     topo.expect("AS3"),
///     3,
///     &Protection::None,
/// )?;
/// assert!(n >= 2); // topo15 offers several core-disjoint paths
/// # Ok::<(), kar::KarError>(())
/// ```
#[derive(Debug, Default)]
pub struct MultipathEdge {
    routes: HashMap<(NodeId, NodeId), Vec<EncodedRoute>>,
}

impl MultipathEdge {
    /// Creates an empty multipath edge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plans and installs up to `k` link-disjoint routes from `src` to
    /// `dst`, each with the given protection, and returns how many were
    /// installed.
    ///
    /// # Errors
    ///
    /// [`KarError::NoPath`] when `src` cannot reach `dst`; encoding
    /// errors are propagated.
    pub fn install(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        k: usize,
        protection: &Protection,
    ) -> Result<usize, KarError> {
        let paths = edge_disjoint_paths(topo, src, dst, k);
        if paths.is_empty() {
            return Err(KarError::NoPath { src, dst });
        }
        let mut encoded = Vec::with_capacity(paths.len());
        for path in paths {
            encoded.push(crate::protection::encode_with_protection(
                topo, path, protection,
            )?);
        }
        let n = encoded.len();
        self.routes.insert((src, dst), encoded);
        Ok(n)
    }

    /// Number of routes installed for a pair.
    pub fn route_count(&self, src: NodeId, dst: NodeId) -> usize {
        self.routes.get(&(src, dst)).map(Vec::len).unwrap_or(0)
    }

    /// The route a given flow id maps to, if installed.
    pub fn route_for(&self, src: NodeId, dst: NodeId, flow: u32) -> Option<&EncodedRoute> {
        let routes = self.routes.get(&(src, dst))?;
        // Fibonacci hashing spreads consecutive flow ids evenly.
        let h = (flow as u64).wrapping_mul(11400714819323198485) >> 32;
        Some(&routes[(h % routes.len() as u64) as usize])
    }
}

impl EdgeLogic for MultipathEdge {
    fn ingress(&mut self, _topo: &Topology, edge: NodeId, pkt: &mut Packet) -> Option<PortIx> {
        let route = self.route_for(edge, pkt.dst, pkt.flow.0)?;
        pkt.route = Some(RouteTag::new(route.route_id.clone()));
        Some(route.uplink)
    }

    fn reroute(&mut self, _topo: &Topology, edge: NodeId, pkt: &mut Packet) -> RerouteDecision {
        // Re-tag with the flow's own route and send it back in (cheap
        // local decision; a production deployment would consult the
        // controller as `Controller::reroute` does).
        match self.route_for(edge, pkt.dst, pkt.flow.0) {
            Some(route) if edge == pkt.src => {
                pkt.route = Some(RouteTag::new(route.route_id.clone()));
                RerouteDecision::Forward {
                    port: route.uplink,
                    delay: SimTime::ZERO,
                }
            }
            _ => RerouteDecision::Drop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflect::{DeflectionTechnique, KarForwarder};
    use kar_simnet::{FlowId, PacketKind, Sim, SimConfig};
    use kar_topology::{paths, rnp28, topo15};

    #[test]
    fn finds_disjoint_paths_on_topo15() {
        let topo = topo15::build();
        let found = edge_disjoint_paths(&topo, topo.expect("AS1"), topo.expect("AS3"), 3);
        // AS1 has a single access link, so everything shares AS1-SW10 —
        // still, the core segments must be link-disjoint.
        assert!(found.len() >= 2, "topo15 has ≥ 2 disjoint core paths");
        let mut used = HashSet::new();
        for path in &found {
            for w in path.windows(2) {
                if topo.switch_id(w[0]).is_none() || topo.switch_id(w[1]).is_none() {
                    continue; // shared host access links
                }
                let l = topo.link_between(w[0], w[1]).unwrap();
                assert!(used.insert(l), "core link reused across paths");
            }
        }
    }

    #[test]
    fn hash_spreads_flows() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let mut edge = MultipathEdge::new();
        let n = edge.install(&topo, as1, as3, 3, &Protection::None).unwrap();
        assert!(n >= 2);
        assert_eq!(edge.route_count(as1, as3), n);
        let mut seen = HashSet::new();
        for flow in 0..64u32 {
            let r = edge.route_for(as1, as3, flow).unwrap();
            seen.insert(r.route_id.clone());
        }
        assert_eq!(seen.len(), n, "all routes receive some flows");
        // Same flow always maps to the same route (no packet-level
        // reordering from multipath itself).
        let a = edge.route_for(as1, as3, 7).unwrap().route_id.clone();
        let b = edge.route_for(as1, as3, 7).unwrap().route_id.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn failure_on_one_path_spares_other_flows() {
        let topo = rnp28::build();
        let src = topo.expect("E_BH");
        let dst = topo.expect("E_113");
        let mut edge = MultipathEdge::new();
        let n = edge.install(&topo, src, dst, 2, &Protection::None).unwrap();
        assert_eq!(n, 2, "SW41→SW113 has the 107 and 109 branches");
        // Identify which link flow 0 and flow 1..k use.
        let mut sim = Sim::new(
            &topo,
            Box::new(KarForwarder::new(DeflectionTechnique::None)),
            Box::new(edge),
            SimConfig::default(),
        );
        // Find two flows mapping to different paths by probing.
        for flow in 0..8u32 {
            sim.inject(src, dst, FlowId(flow), 0, PacketKind::Probe, 300);
        }
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 8, "all paths work when healthy");

        // Now fail the SW73-SW107 branch; flows hashed to the SW109
        // branch must be unaffected even with deflection disabled.
        let mut edge = MultipathEdge::new();
        edge.install(&topo, src, dst, 2, &Protection::None).unwrap();
        let mut sim = Sim::new(
            &topo,
            Box::new(KarForwarder::new(DeflectionTechnique::None)),
            Box::new(edge),
            SimConfig::default(),
        );
        sim.schedule_link_down(kar_simnet::SimTime::ZERO, topo.expect_link("SW73", "SW107"));
        for flow in 0..8u32 {
            sim.inject(src, dst, FlowId(flow), 0, PacketKind::Probe, 300);
        }
        sim.run_to_quiescence();
        let s = sim.stats();
        assert!(
            s.delivered >= 1 && s.delivered < 8,
            "only the failed path's flows die without deflection: {s:?}"
        );
    }

    #[test]
    fn duplicate_path_widens_search_instead_of_ending_it() {
        // Two parallel one-switch paths: H0-A-H1 and H0-B-H1. Neither
        // contains a core-core link, so accepting the first adds nothing
        // to the avoid set and the next BFS re-finds it; the search used
        // to give up there and report a single path.
        let mut b = kar_topology::TopologyBuilder::new();
        let params = kar_topology::LinkParams::default();
        let h0 = b.edge("H0");
        let h1 = b.edge("H1");
        let sa = b.core("A", 3);
        let sb = b.core("B", 5);
        b.link(h0, sa, params);
        b.link(sa, h1, params);
        b.link(h0, sb, params);
        b.link(sb, h1, params);
        let topo = b.build().unwrap();
        let found = edge_disjoint_paths(&topo, h0, h1, 3);
        assert_eq!(found.len(), 2, "both parallel paths: {found:?}");
        assert_ne!(found[0], found[1]);
        // Asking for more than exist still terminates.
        assert_eq!(edge_disjoint_paths(&topo, h0, h1, 8).len(), 2);
    }

    #[test]
    fn disjoint_paths_are_real_paths() {
        let topo = rnp28::build();
        for path in edge_disjoint_paths(&topo, topo.expect("E_BV"), topo.expect("E_SP"), 3) {
            assert!(paths::links_along(&topo, &path).is_ok());
            assert_eq!(path.first(), Some(&topo.expect("E_BV")));
            assert_eq!(path.last(), Some(&topo.expect("E_SP")));
        }
    }

    #[test]
    fn unreachable_install_errors() {
        let topo = topo15::build();
        let mut edge = MultipathEdge::new();
        // AS1 → AS1 degenerates to a single-node path → encode fails as
        // NoPath via the empty-primary check.
        let as1 = topo.expect("AS1");
        let err = edge.install(&topo, as1, as1, 2, &Protection::None);
        assert!(err.is_err());
    }
}
