//! The three deflection techniques of paper §2.1 and the KAR dataplane.
//!
//! Every technique first computes `output = route_id mod switch_id`
//! (Eq. 3). They differ in what happens when that port is unusable — or,
//! for hot-potato, in what happens after the first deflection:
//!
//! * **HP (Hot-Potato)** — once a packet has been deflected, every later
//!   hop is uniformly random over healthy ports (a pure random walk);
//!   the paper uses HP as the lower-bound reference.
//! * **AVP (Any Valid Port)** — when the residue names a port that does
//!   not exist or is down, pick a random healthy port; the input port is
//!   a legal choice (two-node ping-pong loops are possible).
//! * **NIP (Not the Input Port)** — AVP, but the input port is excluded
//!   both when the residue points at it and from the random choice
//!   (Algorithm 1); avoids two-node loops and yields the paper's best
//!   results.
//!
//! `None` (drop on failure) gives the "no deflection" reference of
//! Fig. 4; the plain dataplane it degenerates to also lives in
//! `kar_simnet::ModuloForwarder`.

use kar_simnet::{DropReason, ForwardDecision, Forwarder, Packet, SwitchCtx};
use kar_topology::PortIx;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// Which failure reaction a KAR switch applies (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeflectionTechnique {
    /// Drop packets whose computed port is unusable ("no deflection").
    None,
    /// Hot-Potato: random walk after the first deflection.
    HotPotato,
    /// Any Valid Port: modulo first, random healthy port on failure
    /// (input port allowed).
    Avp,
    /// Not the Input Port: AVP excluding the input port (Algorithm 1).
    #[default]
    Nip,
}

impl DeflectionTechnique {
    /// All techniques, in the order the paper presents them.
    pub const ALL: [DeflectionTechnique; 4] = [
        DeflectionTechnique::None,
        DeflectionTechnique::HotPotato,
        DeflectionTechnique::Avp,
        DeflectionTechnique::Nip,
    ];

    /// The paper's short name.
    pub fn label(self) -> &'static str {
        match self {
            DeflectionTechnique::None => "NoDeflection",
            DeflectionTechnique::HotPotato => "HP",
            DeflectionTechnique::Avp => "AVP",
            DeflectionTechnique::Nip => "NIP",
        }
    }
}

impl fmt::Display for DeflectionTechnique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The KAR core dataplane: stateless modulo forwarding with the chosen
/// deflection technique.
///
/// One instance serves every switch in the network — KAR switches hold no
/// per-switch state ([`Forwarder::state_entries`] is 0), which is the
/// Table 2 "stateless core" property.
#[derive(Debug, Clone, Copy)]
pub struct KarForwarder {
    technique: DeflectionTechnique,
}

impl KarForwarder {
    /// Creates a dataplane with the given technique.
    pub fn new(technique: DeflectionTechnique) -> Self {
        KarForwarder { technique }
    }

    /// The configured technique.
    pub fn technique(&self) -> DeflectionTechnique {
        self.technique
    }

    /// Uniformly random healthy port, optionally excluding one port.
    /// Returns `None` when no candidate exists.
    ///
    /// With `prefer_core`, core-facing ports are preferred: a switch
    /// knows which of its ports lead to hosts (in OpenFlow terms, edge
    /// ports), and deflecting a transit packet into a host port cannot
    /// help it — the paper's §3 candidate enumerations (e.g. five
    /// candidates at SW13, the SW109-or-SW71 coin at SW73) count only
    /// switch-to-switch links. AVP and NIP use this preference; host
    /// ports remain a last resort when no core port is available.
    /// Hot-potato passes `prefer_core = false` — its "complete random
    /// path" may stumble into any edge, where the controller re-encodes
    /// the packet (delivery "by chance", §2.1).
    fn random_port(
        ctx: &SwitchCtx<'_>,
        exclude: Option<PortIx>,
        prefer_core: bool,
        rng: &mut StdRng,
    ) -> Option<PortIx> {
        let healthy: Vec<PortIx> = ctx
            .healthy_ports()
            .filter(|&p| Some(p) != exclude)
            .collect();
        let core: Vec<PortIx> = if prefer_core {
            healthy
                .iter()
                .copied()
                .filter(|&p| {
                    ctx.topo
                        .neighbors(ctx.node)
                        .find(|&(port, _, _)| port == p)
                        .map(|(_, _, peer)| ctx.topo.switch_id(peer).is_some())
                        .unwrap_or(false)
                })
                .collect()
        } else {
            Vec::new()
        };
        let candidates = if core.is_empty() { &healthy } else { &core };
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.gen_range(0..candidates.len())])
        }
    }

    fn deflect(
        ctx: &SwitchCtx<'_>,
        pkt: &mut Packet,
        exclude: Option<PortIx>,
        prefer_core: bool,
        rng: &mut StdRng,
    ) -> ForwardDecision {
        match Self::random_port(ctx, exclude, prefer_core, rng) {
            Some(p) => {
                pkt.deflections = pkt.deflections.saturating_add(1);
                if let Some(tag) = &mut pkt.route {
                    tag.deflected = true;
                }
                ForwardDecision::Output(p)
            }
            None => ForwardDecision::Drop(DropReason::NoRoute),
        }
    }
}

impl Forwarder for KarForwarder {
    fn forward(
        &mut self,
        ctx: &SwitchCtx<'_>,
        pkt: &mut Packet,
        rng: &mut StdRng,
    ) -> ForwardDecision {
        let Some(tag) = &mut pkt.route else {
            return ForwardDecision::Drop(DropReason::MissingTag);
        };
        let computed = ctx.residue(tag);
        let was_deflected = tag.deflected;
        match self.technique {
            DeflectionTechnique::None => {
                if ctx.port_available(computed) {
                    ForwardDecision::Output(computed)
                } else if (computed as usize) < ctx.ports.len() {
                    ForwardDecision::Drop(DropReason::PortDown)
                } else {
                    ForwardDecision::Drop(DropReason::ResidueOutOfRange)
                }
            }
            DeflectionTechnique::HotPotato => {
                if was_deflected {
                    // "Once a packet is deflected, it follows a complete
                    // random path in network."
                    Self::deflect(ctx, pkt, None, false, rng)
                } else if ctx.port_available(computed) {
                    ForwardDecision::Output(computed)
                } else {
                    Self::deflect(ctx, pkt, None, false, rng)
                }
            }
            DeflectionTechnique::Avp => {
                if ctx.port_available(computed) {
                    ForwardDecision::Output(computed)
                } else {
                    Self::deflect(ctx, pkt, None, true, rng)
                }
            }
            DeflectionTechnique::Nip => {
                if ctx.port_available(computed) && Some(computed) != ctx.in_port {
                    ForwardDecision::Output(computed)
                } else {
                    Self::deflect(ctx, pkt, ctx.in_port, true, rng)
                }
            }
        }
    }

    fn name(&self) -> &str {
        self.technique.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_rns::BigUint;
    use kar_simnet::{FlowId, PacketKind, RouteTag, SimTime};
    use kar_topology::{LinkParams, NodeId, Topology, TopologyBuilder};
    use rand::SeedableRng;

    /// Hub switch (id 7) with three neighbours: X (port 0), Y (1), Z (2).
    fn hub() -> (Topology, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.core("A", 7);
        let x = b.core("X", 11);
        let y = b.core("Y", 13);
        let z = b.core("Z", 17);
        b.link(a, x, LinkParams::default());
        b.link(a, y, LinkParams::default());
        b.link(a, z, LinkParams::default());
        let topo = b.build().unwrap();
        (topo, a)
    }

    fn pkt(route_id: u64, deflected: bool) -> Packet {
        let mut tag = RouteTag::new(BigUint::from(route_id));
        tag.deflected = deflected;
        Packet {
            id: 0,
            flow: FlowId(0),
            seq: 0,
            kind: PacketKind::Probe,
            size_bytes: 64,
            src: NodeId(0),
            dst: NodeId(1),
            route: Some(tag),
            ttl: 16,
            hops: 0,
            deflections: 0,
            created: SimTime::ZERO,
        }
    }

    fn ctx<'a>(
        topo: &'a Topology,
        node: NodeId,
        in_port: Option<u64>,
        ports: &'a [bool],
    ) -> SwitchCtx<'a> {
        SwitchCtx {
            topo,
            node,
            switch_id: 7,
            in_port,
            ports,
            now: SimTime::ZERO,
            reducer: None,
            behavior: kar_simnet::Behavior::Honest,
        }
    }

    #[test]
    fn all_techniques_follow_healthy_residue() {
        let (topo, a) = hub();
        let up = vec![true, true, true];
        let mut rng = StdRng::seed_from_u64(1);
        for technique in DeflectionTechnique::ALL {
            let mut fwd = KarForwarder::new(technique);
            // 9 mod 7 = 2 → port 2, healthy, not the input (0).
            let mut p = pkt(9, false);
            let d = fwd.forward(&ctx(&topo, a, Some(0), &up), &mut p, &mut rng);
            assert_eq!(d, ForwardDecision::Output(2), "{technique}");
            assert_eq!(p.deflections, 0);
        }
    }

    #[test]
    fn none_drops_on_failed_port() {
        let (topo, a) = hub();
        let down2 = vec![true, true, false];
        let mut rng = StdRng::seed_from_u64(1);
        let mut fwd = KarForwarder::new(DeflectionTechnique::None);
        let mut p = pkt(9, false);
        assert_eq!(
            fwd.forward(&ctx(&topo, a, Some(0), &down2), &mut p, &mut rng),
            ForwardDecision::Drop(DropReason::PortDown)
        );
        // 5 mod 7 = 5 ≥ 3 ports: the residue itself is invalid here.
        let mut p = pkt(5, false);
        assert_eq!(
            fwd.forward(&ctx(&topo, a, Some(0), &down2), &mut p, &mut rng),
            ForwardDecision::Drop(DropReason::ResidueOutOfRange)
        );
    }

    #[test]
    fn avp_deflects_to_any_healthy_port_including_input() {
        let (topo, a) = hub();
        let down2 = vec![true, true, false];
        let mut rng = StdRng::seed_from_u64(1);
        let mut fwd = KarForwarder::new(DeflectionTechnique::Avp);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let mut p = pkt(9, false);
            match fwd.forward(&ctx(&topo, a, Some(0), &down2), &mut p, &mut rng) {
                ForwardDecision::Output(port) => {
                    seen.insert(port);
                    assert_eq!(p.deflections, 1);
                    assert!(p.route.unwrap().deflected);
                }
                d => panic!("unexpected {d:?}"),
            }
        }
        // AVP may return the packet to its input port 0.
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn nip_never_uses_the_input_port() {
        let (topo, a) = hub();
        let down2 = vec![true, true, false];
        let mut rng = StdRng::seed_from_u64(1);
        let mut fwd = KarForwarder::new(DeflectionTechnique::Nip);
        for _ in 0..200 {
            let mut p = pkt(9, false);
            match fwd.forward(&ctx(&topo, a, Some(0), &down2), &mut p, &mut rng) {
                ForwardDecision::Output(port) => assert_eq!(port, 1),
                d => panic!("unexpected {d:?}"),
            }
        }
    }

    #[test]
    fn nip_rejects_residue_pointing_at_input() {
        let (topo, a) = hub();
        let up = vec![true, true, true];
        let mut rng = StdRng::seed_from_u64(1);
        let mut fwd = KarForwarder::new(DeflectionTechnique::Nip);
        // 9 mod 7 = 2 and the packet came in on port 2.
        for _ in 0..100 {
            let mut p = pkt(9, false);
            match fwd.forward(&ctx(&topo, a, Some(2), &up), &mut p, &mut rng) {
                ForwardDecision::Output(port) => assert!(port == 0 || port == 1),
                d => panic!("unexpected {d:?}"),
            }
        }
        // AVP in the same situation happily sends it back.
        let mut avp = KarForwarder::new(DeflectionTechnique::Avp);
        let mut p = pkt(9, false);
        assert_eq!(
            avp.forward(&ctx(&topo, a, Some(2), &up), &mut p, &mut rng),
            ForwardDecision::Output(2)
        );
    }

    #[test]
    fn nip_drops_when_only_the_input_is_healthy() {
        let (topo, a) = hub();
        let only0 = vec![true, false, false];
        let mut rng = StdRng::seed_from_u64(1);
        let mut fwd = KarForwarder::new(DeflectionTechnique::Nip);
        let mut p = pkt(9, false);
        assert_eq!(
            fwd.forward(&ctx(&topo, a, Some(0), &only0), &mut p, &mut rng),
            ForwardDecision::Drop(DropReason::NoRoute)
        );
    }

    /// Degree-1 switch (id 7) with its single neighbour X on port 0.
    fn stub() -> (Topology, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.core("A", 7);
        let x = b.core("X", 11);
        b.link(a, x, LinkParams::default());
        let topo = b.build().unwrap();
        (topo, a)
    }

    /// Degree-2 switch (id 7) with neighbours X (port 0) and Y (port 1).
    fn chain() -> (Topology, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.core("A", 7);
        let x = b.core("X", 11);
        let y = b.core("Y", 13);
        b.link(a, x, LinkParams::default());
        b.link(a, y, LinkParams::default());
        let topo = b.build().unwrap();
        (topo, a)
    }

    /// At a degree-1 switch every arriving packet's only exit is the
    /// port it came in on. NIP must drop (Algorithm 1's fallback has no
    /// candidate); AVP happily ping-pongs it back.
    #[test]
    fn nip_drops_at_degree_one_switch() {
        let (topo, a) = stub();
        let up = vec![true];
        let mut rng = StdRng::seed_from_u64(1);
        // 7 mod 7 = 0: the residue names the input port itself.
        let mut fwd = KarForwarder::new(DeflectionTechnique::Nip);
        let mut p = pkt(7, false);
        assert_eq!(
            fwd.forward(&ctx(&topo, a, Some(0), &up), &mut p, &mut rng),
            ForwardDecision::Drop(DropReason::NoRoute)
        );
        // 5 mod 7 = 5: the residue is out of range — same dead end.
        let mut p = pkt(5, false);
        assert_eq!(
            fwd.forward(&ctx(&topo, a, Some(0), &up), &mut p, &mut rng),
            ForwardDecision::Drop(DropReason::NoRoute)
        );
        // AVP ping-pongs both packets back out the input port — via the
        // residue for route 7 (no deflection counted), via the random
        // fallback for the out-of-range route 5.
        let mut avp = KarForwarder::new(DeflectionTechnique::Avp);
        for (route_id, deflections) in [(7, 0), (5, 1)] {
            let mut p = pkt(route_id, false);
            assert_eq!(
                avp.forward(&ctx(&topo, a, Some(0), &up), &mut p, &mut rng),
                ForwardDecision::Output(0)
            );
            assert_eq!(p.deflections, deflections, "route {route_id}");
        }
    }

    /// At a degree-2 switch whose other port is down, the input port is
    /// the only healthy exit: NIP drops, AVP returns the packet.
    #[test]
    fn nip_drops_at_degree_two_switch_with_other_port_down() {
        let (topo, a) = chain();
        let only_input = vec![true, false];
        let mut rng = StdRng::seed_from_u64(1);
        let mut fwd = KarForwarder::new(DeflectionTechnique::Nip);
        // 8 mod 7 = 1: the residue names the down port.
        let mut p = pkt(8, false);
        assert_eq!(
            fwd.forward(&ctx(&topo, a, Some(0), &only_input), &mut p, &mut rng),
            ForwardDecision::Drop(DropReason::NoRoute)
        );
        // 7 mod 7 = 0: the residue names the (healthy) input port.
        let mut p = pkt(7, false);
        assert_eq!(
            fwd.forward(&ctx(&topo, a, Some(0), &only_input), &mut p, &mut rng),
            ForwardDecision::Drop(DropReason::NoRoute)
        );
        let mut avp = KarForwarder::new(DeflectionTechnique::Avp);
        let mut p = pkt(8, false);
        assert_eq!(
            avp.forward(&ctx(&topo, a, Some(0), &only_input), &mut p, &mut rng),
            ForwardDecision::Output(0)
        );
    }

    /// Degree-2 with both ports healthy is NIP's deterministic case: the
    /// packet must leave on the port it did not arrive on, whatever the
    /// residue says.
    #[test]
    fn nip_is_deterministic_at_degree_two() {
        let (topo, a) = chain();
        let up = vec![true, true];
        let mut rng = StdRng::seed_from_u64(1);
        let mut fwd = KarForwarder::new(DeflectionTechnique::Nip);
        for route_id in [7, 8, 5] {
            // Residues 0 (input), 1 (the other port), 5 (out of range).
            let mut p = pkt(route_id, false);
            assert_eq!(
                fwd.forward(&ctx(&topo, a, Some(0), &up), &mut p, &mut rng),
                ForwardDecision::Output(1),
                "route_id {route_id}"
            );
            let mut p = pkt(route_id, false);
            assert_eq!(
                fwd.forward(&ctx(&topo, a, Some(1), &up), &mut p, &mut rng),
                ForwardDecision::Output(0),
                "route_id {route_id} reversed"
            );
        }
    }

    #[test]
    fn hot_potato_random_walks_after_first_deflection() {
        let (topo, a) = hub();
        let up = vec![true, true, true];
        let mut rng = StdRng::seed_from_u64(1);
        let mut fwd = KarForwarder::new(DeflectionTechnique::HotPotato);
        // Residue points to port 2 and everything is healthy, but the
        // packet was already deflected → random walk anyway.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            let mut p = pkt(9, true);
            if let ForwardDecision::Output(port) =
                fwd.forward(&ctx(&topo, a, Some(0), &up), &mut p, &mut rng)
            {
                seen.insert(port);
            }
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        // AVP/NIP in the same state follow the residue (deflection ceases
        // once a packet re-joins an encoded path — §2.1's key argument).
        for technique in [DeflectionTechnique::Avp, DeflectionTechnique::Nip] {
            let mut fwd = KarForwarder::new(technique);
            let mut p = pkt(9, true);
            assert_eq!(
                fwd.forward(&ctx(&topo, a, Some(0), &up), &mut p, &mut rng),
                ForwardDecision::Output(2),
                "{technique}"
            );
        }
    }

    #[test]
    fn invalid_residue_triggers_deflection() {
        let (topo, a) = hub();
        let up = vec![true, true, true];
        let mut rng = StdRng::seed_from_u64(1);
        // 5 mod 7 = 5, but the switch has only 3 ports.
        for technique in [DeflectionTechnique::Avp, DeflectionTechnique::Nip] {
            let mut fwd = KarForwarder::new(technique);
            let mut p = pkt(5, false);
            match fwd.forward(&ctx(&topo, a, Some(0), &up), &mut p, &mut rng) {
                ForwardDecision::Output(port) => {
                    assert!(port < 3);
                    if technique == DeflectionTechnique::Nip {
                        assert_ne!(port, 0);
                    }
                    assert_eq!(p.deflections, 1);
                }
                d => panic!("unexpected {d:?} for {technique}"),
            }
        }
    }

    #[test]
    fn missing_route_tag_drops() {
        let (topo, a) = hub();
        let up = vec![true, true, true];
        let mut rng = StdRng::seed_from_u64(1);
        let mut fwd = KarForwarder::new(DeflectionTechnique::Nip);
        let mut p = pkt(9, false);
        p.route = None;
        assert_eq!(
            fwd.forward(&ctx(&topo, a, None, &up), &mut p, &mut rng),
            ForwardDecision::Drop(DropReason::MissingTag)
        );
    }

    #[test]
    fn stateless_core_property() {
        let fwd = KarForwarder::new(DeflectionTechnique::Nip);
        assert_eq!(fwd.state_entries(NodeId(0)), 0);
        assert_eq!(fwd.name(), "NIP");
        assert_eq!(DeflectionTechnique::HotPotato.to_string(), "HP");
    }
}
