//! Controller recovery loop: reactive re-encoding after failure
//! detection.
//!
//! During the paper's experiments "the controller ignores all failure
//! notifications and keeps the same route" — deflection alone carries
//! packets around the failure. This module implements the other half of
//! a deployable system: a controller that *listens*. When the failure
//! detector resolves a link transition (the data plane's detection
//! delay has elapsed — see [`kar_simnet::SimConfig::detection_delay`]),
//! the notification travels the control channel for a further
//! [`RecoveryConfig::notification_delay`]; the controller then re-encodes
//! every installed route whose primary path crosses a failed link —
//! avoiding the known-failed links, through the shared
//! [`EncodingCache`] when one is attached — and installs the fresh route
//! ID at the ingress edge.
//!
//! Until the new ID lands, in-flight and newly injected packets still
//! carry the old one and survive (or not) purely by deflection — exactly
//! the window the paper's resilience argument is about. The
//! [`RecoveryLog`] makes that window measurable: it records, per flow,
//! when the failure was observed and when the first packet left the edge
//! with a recovered route ID.

use crate::cache::EncodingCache;
use crate::controller::{Controller, EncodeOutcome, EncodeRequest, ReroutePolicy};
use crate::error::KarError;
use crate::protection::Protection;
use crate::route::EncodedRoute;
use kar_obs::{Entity, Event, EventKind, ObsHandle};
use kar_simnet::{EdgeLogic, Packet, RerouteDecision, RouteTag, SimTime};
use kar_topology::{paths, LinkId, NodeId, PortIx, Topology};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// Knobs of the recovery loop.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Control-channel latency from the failure detector resolving a
    /// transition to the re-encoded route being live at the edge. This
    /// is *on top of* the data plane's detection delay.
    pub notification_delay: SimTime,
    /// Protection applied to recovery routes. The paper's reactive
    /// recomputation is unprotected ([`Protection::None`], the default);
    /// protecting the detour too models a controller that re-arms
    /// against the next failure.
    pub protection: Protection,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            notification_delay: SimTime::from_millis(2),
            protection: Protection::None,
        }
    }
}

/// One link notification as the controller processed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkNotice {
    /// The link that changed state.
    pub link: LinkId,
    /// `true` for a repair, `false` for a failure.
    pub up: bool,
    /// When the failure detector resolved the transition.
    pub observed_at: SimTime,
    /// When the controller acted on it (`observed_at` plus the
    /// notification delay).
    pub applied_at: SimTime,
}

/// One flow switching onto a recovered route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecovery {
    /// Ingress edge of the recovered flow.
    pub src: NodeId,
    /// Destination edge.
    pub dst: NodeId,
    /// When the triggering failure was observed by the detector.
    pub failed_at: SimTime,
    /// When the first packet left the edge with the recovered route ID.
    pub recovered_at: SimTime,
}

impl FlowRecovery {
    /// Detector-to-recovered-traffic latency.
    pub fn latency(&self) -> SimTime {
        self.recovered_at.since(self.failed_at)
    }
}

/// Everything the recovery loop did during a run.
///
/// Shared via [`RecoveringController::log_handle`] so the telemetry can
/// read it after the simulation (which owns the controller) finishes.
#[derive(Debug, Clone, Default)]
pub struct RecoveryLog {
    /// Link notifications in processing order.
    pub notices: Vec<LinkNotice>,
    /// Flows that switched onto a recovered route.
    pub flows: Vec<FlowRecovery>,
}

impl RecoveryLog {
    /// Mean per-flow recovery latency in seconds (0.0 when no flow
    /// needed recovery).
    pub fn mean_recovery_latency_s(&self) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        let total: u64 = self.flows.iter().map(|f| f.latency().as_nanos()).sum();
        (total as f64 / self.flows.len() as f64) / 1e9
    }
}

/// Locks the shared recovery log, recovering from a poisoned mutex.
///
/// Telemetry readers hold this lock only to push/clone plain records, so
/// a panic on another thread mid-push leaves the log merely truncated,
/// never structurally broken — propagating the poison would cascade one
/// worker's panic into every simulation sharing the log handle.
fn lock_log(log: &Mutex<RecoveryLog>) -> std::sync::MutexGuard<'_, RecoveryLog> {
    log.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A route as originally installed, before any failure.
#[derive(Debug, Clone)]
struct InstalledRoute {
    links: Vec<LinkId>,
    route: EncodedRoute,
    /// Protection the install asked for, so a later [`EncodeRequest`]
    /// with a different level re-installs instead of serving the
    /// existing route.
    protection: Protection,
}

/// The route currently stamped on packets of one `(src, dst)` pair.
#[derive(Debug, Clone)]
struct CurrentRoute {
    /// Failure epoch this decision was made in; stale entries are
    /// recomputed lazily on the next ingress.
    epoch: u64,
    route: EncodedRoute,
    /// `true` when `route` detours around a failure (differs from the
    /// originally installed one).
    detour: bool,
    /// Causal span of the re-encode that produced this detour (when
    /// observability is on); `stamp` events parent to it.
    span: Option<u64>,
}

/// A link notification in flight on the control channel.
#[derive(Debug, Clone, Copy)]
struct PendingNotice {
    effective_at: SimTime,
    link: LinkId,
    up: bool,
    observed_at: SimTime,
}

/// Failure-reactive [`EdgeLogic`]: a [`Controller`] plus the recovery
/// loop described in the module docs.
///
/// Routes are installed up front exactly like on the plain controller;
/// after a failure notification becomes effective, every affected pair
/// is re-encoded (lazily, on its next ingress — the simulation clock is
/// packet-driven) around the failed links, and restored when the repair
/// notification lands.
#[derive(Debug)]
pub struct RecoveringController {
    inner: Controller,
    config: RecoveryConfig,
    originals: HashMap<(NodeId, NodeId), InstalledRoute>,
    current: HashMap<(NodeId, NodeId), CurrentRoute>,
    pending: VecDeque<PendingNotice>,
    failed: HashSet<LinkId>,
    /// Bumped whenever the effective failure set changes; `current`
    /// entries from older epochs are recomputed on demand.
    epoch: u64,
    last_failure_observed: Option<SimTime>,
    /// Link of the most recently applied notice (failure or repair) —
    /// the causal anchor for re-encode events.
    last_notice_link: Option<LinkId>,
    log: Arc<Mutex<RecoveryLog>>,
    obs: ObsHandle,
}

impl RecoveringController {
    /// Creates a recovery-capable controller (failure-aware re-encoding
    /// is always on — that is the point).
    pub fn new(config: RecoveryConfig) -> Self {
        let mut inner = Controller::new();
        inner.set_failure_aware(true);
        RecoveringController {
            inner,
            config,
            originals: HashMap::new(),
            current: HashMap::new(),
            pending: VecDeque::new(),
            failed: HashSet::new(),
            epoch: 0,
            last_failure_observed: None,
            last_notice_link: None,
            log: Arc::new(Mutex::new(RecoveryLog::default())),
            obs: ObsHandle::disabled(),
        }
    }

    /// Sets the wrong-edge policy of the wrapped controller.
    pub fn with_reroute(mut self, policy: ReroutePolicy) -> Self {
        self.inner = self.inner.with_reroute(policy);
        self
    }

    /// Routes all route-ID computation through a shared
    /// [`EncodingCache`].
    pub fn with_encoding_cache(mut self, cache: Arc<EncodingCache>) -> Self {
        self.inner = self.inner.with_encoding_cache(cache);
        self
    }

    /// Attaches an observability bundle: the loop records a
    /// `recovery.notices` counter and `recovery.notification_ns` /
    /// `recovery.latency_ns` histograms, and emits a `reencode` event
    /// whenever a flow switches onto (or back off) a detour. Pure
    /// observation — never changes which routes are chosen.
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Shares a pre-made log (lets a builder keep a handle across
    /// `into_sim`, which consumes the controller).
    pub fn with_log(mut self, log: Arc<Mutex<RecoveryLog>>) -> Self {
        self.log = log;
        self
    }

    /// Handle onto the recovery log; read it after the run.
    pub fn log_handle(&self) -> Arc<Mutex<RecoveryLog>> {
        Arc::clone(&self.log)
    }

    /// Serves one [`EncodeRequest`] at simulation time `now` — the
    /// entry point the `kar-service` daemon drives over its socket.
    ///
    /// Applies every notification whose control-channel delay has
    /// elapsed by `now`, installs the pair on first sight (or when the
    /// requested protection changed), and returns the route *currently*
    /// live for the pair — the original before a failure notice lands,
    /// the detour after — together with its canonical wire header.
    ///
    /// # Errors
    ///
    /// See [`Controller::install_route`].
    pub fn encode(
        &mut self,
        topo: &Topology,
        req: &EncodeRequest,
        now: SimTime,
    ) -> Result<EncodeOutcome, KarError> {
        self.apply_pending(now);
        let needs_install = match self.originals.get(&(req.src, req.dst)) {
            Some(orig) => orig.protection != req.protection,
            None => true,
        };
        if needs_install {
            let primary =
                paths::bfs_shortest_path(topo, req.src, req.dst).ok_or(KarError::NoPath {
                    src: req.src,
                    dst: req.dst,
                })?;
            self.install_explicit(topo, primary, &req.protection)?;
        }
        let route =
            self.current_route(topo, req.src, req.dst, now)
                .ok_or(KarError::RouteNotInstalled {
                    src: req.src,
                    dst: req.dst,
                })?;
        EncodeOutcome::of(route)
    }

    /// Installs a shortest-path route, remembering its primary path so
    /// later failures can be matched against it.
    #[deprecated(
        since = "0.3.0",
        note = "use RecoveringController::encode(topo, &EncodeRequest, now)"
    )]
    pub fn install_route(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        protection: &Protection,
    ) -> Result<EncodedRoute, KarError> {
        let primary =
            paths::bfs_shortest_path(topo, src, dst).ok_or(KarError::NoPath { src, dst })?;
        self.install_explicit(topo, primary, protection)
    }

    /// Installs an explicit (pinned) primary path with protection.
    ///
    /// # Errors
    ///
    /// See [`Controller::install_explicit`].
    pub fn install_explicit(
        &mut self,
        topo: &Topology,
        primary: Vec<NodeId>,
        protection: &Protection,
    ) -> Result<EncodedRoute, KarError> {
        let (src, dst) = (
            *primary.first().ok_or(KarError::NoPath {
                src: NodeId(0),
                dst: NodeId(0),
            })?,
            *primary.last().expect("non-empty checked above"),
        );
        let links = paths::links_along(topo, &primary)?;
        let route = self.inner.install_explicit(topo, primary, protection)?;
        self.originals.insert(
            (src, dst),
            InstalledRoute {
                links,
                route: route.clone(),
                protection: protection.clone(),
            },
        );
        self.current.remove(&(src, dst));
        Ok(route)
    }

    /// Applies every pending notification whose control-channel delay
    /// has elapsed by `now`.
    fn apply_pending(&mut self, now: SimTime) {
        while let Some(next) = self.pending.front().copied() {
            if next.effective_at > now {
                break;
            }
            self.pending.pop_front();
            self.last_notice_link = Some(next.link);
            let changed = if next.up {
                self.inner.notify_repair(next.link);
                self.failed.remove(&next.link)
            } else {
                self.inner.notify_failure(next.link);
                self.last_failure_observed = Some(next.observed_at);
                self.failed.insert(next.link)
            };
            if changed {
                self.epoch += 1;
                // Wrong-edge recomputations cached under the previous
                // failure set are stale now.
                self.inner.clear_routes();
            }
            lock_log(&self.log).notices.push(LinkNotice {
                link: next.link,
                up: next.up,
                observed_at: next.observed_at,
                applied_at: next.effective_at,
            });
            if let Some(obs) = self.obs.get() {
                obs.metrics
                    .counter(Entity::Global, "recovery.notices")
                    .inc();
                obs.metrics
                    .histogram(Entity::Global, "recovery.notification_ns")
                    .observe(next.effective_at.since(next.observed_at).as_nanos());
            }
        }
    }

    /// The route to stamp on a packet entering at `(src, dst)` now,
    /// recomputing if the failure epoch moved since the last packet.
    fn current_route(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        now: SimTime,
    ) -> Option<EncodedRoute> {
        let key = (src, dst);
        if let Some(cur) = self.current.get(&key) {
            if cur.epoch == self.epoch {
                return Some(cur.route.clone());
            }
        }
        let orig = self.originals.get(&key)?.clone();
        let broken = orig.links.iter().any(|l| self.failed.contains(l));
        let (route, detour) = if !broken {
            (orig.route.clone(), false)
        } else {
            match self
                .inner
                .install_route(topo, src, dst, &self.config.protection.clone())
            {
                Ok(r) => (r, true),
                // No failure-avoiding path: keep the original ID and let
                // deflection fight for the packets.
                Err(_) => (orig.route.clone(), false),
            }
        };
        let was_detour = self.current.get(&key).map(|c| c.detour).unwrap_or(false);
        // A re-encode while already detoured (new epoch, still broken)
        // keeps its original span: causally it is the same recovery.
        let mut span = if detour {
            self.current.get(&key).and_then(|c| c.span)
        } else {
            None
        };
        if detour && !was_detour {
            if let Some(failed_at) = self.last_failure_observed {
                lock_log(&self.log).flows.push(FlowRecovery {
                    src,
                    dst,
                    failed_at,
                    recovered_at: now,
                });
                if let Some(obs) = self.obs.get() {
                    let latency_ns = now.since(failed_at).as_nanos();
                    obs.metrics
                        .counter(Entity::Global, "recovery.reencodes")
                        .inc();
                    obs.metrics
                        .histogram(Entity::Global, "recovery.latency_ns")
                        .observe(latency_ns);
                    // Parent the re-encode to the detection of the link
                    // that actually broke this pair's primary path.
                    let parent = orig
                        .links
                        .iter()
                        .find(|l| self.failed.contains(l))
                        .and_then(|l| obs.spans.last_detect(l.0 as u32));
                    let s = obs.spans.fresh();
                    span = Some(s);
                    obs.events.push(Event {
                        node: Some(src.0 as u32),
                        aux: latency_ns,
                        tag: "detour",
                        span: Some(s),
                        parent,
                        ..Event::new(now.as_nanos(), EventKind::Reencode)
                    });
                }
            }
        } else if !detour && was_detour {
            if let Some(obs) = self.obs.get() {
                let parent = self
                    .last_notice_link
                    .and_then(|l| obs.spans.last_detect(l.0 as u32));
                obs.events.push(Event {
                    node: Some(src.0 as u32),
                    tag: "restore",
                    span: Some(obs.spans.fresh()),
                    parent,
                    ..Event::new(now.as_nanos(), EventKind::Reencode)
                });
            }
        }
        self.current.insert(
            key,
            CurrentRoute {
                epoch: self.epoch,
                route: route.clone(),
                detour,
                span,
            },
        );
        Some(route)
    }
}

impl EdgeLogic for RecoveringController {
    fn ingress(&mut self, topo: &Topology, edge: NodeId, pkt: &mut Packet) -> Option<PortIx> {
        // `created` is the injection time — the current simulation time
        // at every ingress call.
        self.apply_pending(pkt.created);
        let route = self.current_route(topo, edge, pkt.dst, pkt.created)?;
        pkt.route = Some(RouteTag::new(route.route_id.clone()));
        // Stamping a detour route is the moment a recovery becomes
        // visible to this packet: link its span to the re-encode's.
        if let Some(obs) = self.obs.get() {
            if let Some(cur) = self.current.get(&(edge, pkt.dst)) {
                if cur.detour {
                    obs.events.push(Event {
                        pkt: Some(pkt.id),
                        flow: Some(pkt.flow.0),
                        node: Some(edge.0 as u32),
                        tag: "detour",
                        span: Some(kar_obs::pkt_span(pkt.id)),
                        parent: cur.span,
                        ..Event::new(pkt.created.as_nanos(), EventKind::Stamp)
                    });
                }
            }
        }
        Some(route.uplink)
    }

    fn reroute(&mut self, topo: &Topology, edge: NodeId, pkt: &mut Packet) -> RerouteDecision {
        self.inner.reroute(topo, edge, pkt)
    }

    fn on_link_event(&mut self, _topo: &Topology, link: LinkId, up: bool, now: SimTime) {
        self.pending.push_back(PendingNotice {
            effective_at: now + self.config.notification_delay,
            link,
            up,
            observed_at: now,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_simnet::{FlowId, PacketKind};
    use kar_topology::topo15;

    /// Installs an unprotected route at t=0 through the public encode
    /// entry point.
    fn install(
        rc: &mut RecoveringController,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
    ) -> EncodedRoute {
        rc.encode(topo, &EncodeRequest::new(src, dst), SimTime::ZERO)
            .unwrap()
            .route
    }

    fn probe(src: NodeId, dst: NodeId, created: SimTime) -> Packet {
        Packet {
            id: 0,
            flow: FlowId(0),
            seq: 0,
            kind: PacketKind::Probe,
            size_bytes: 100,
            src,
            dst,
            route: None,
            ttl: 64,
            hops: 0,
            deflections: 0,
            created,
        }
    }

    #[test]
    fn reencodes_after_the_notification_delay_and_reverts_on_repair() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let failed = topo.expect_link("SW7", "SW13");
        let mut rc = RecoveringController::new(RecoveryConfig {
            notification_delay: SimTime::from_millis(2),
            protection: Protection::None,
        });
        let original = install(&mut rc, &topo, as1, as3);

        // Failure observed at t=1ms: not yet effective at t=2ms...
        rc.on_link_event(&topo, failed, false, SimTime::from_millis(1));
        let mut pkt = probe(as1, as3, SimTime::from_millis(2));
        rc.ingress(&topo, as1, &mut pkt).unwrap();
        assert_eq!(
            *pkt.route.as_ref().unwrap().route_id,
            original.route_id,
            "before the notification lands the old ID is stamped"
        );

        // ...but effective at t=3ms: the detour avoids SW7-SW13.
        let mut pkt = probe(as1, as3, SimTime::from_millis(3));
        rc.ingress(&topo, as1, &mut pkt).unwrap();
        let recovered = pkt.route.as_ref().unwrap().route_id.clone();
        assert_ne!(*recovered, original.route_id);

        let log = rc.log_handle();
        {
            let log = log.lock().unwrap();
            assert_eq!(log.notices.len(), 1);
            assert_eq!(log.flows.len(), 1);
            let f = log.flows[0];
            assert_eq!((f.src, f.dst), (as1, as3));
            assert_eq!(f.latency(), SimTime::from_millis(2));
            assert!((log.mean_recovery_latency_s() - 0.002).abs() < 1e-12);
        }

        // Repair observed at t=5ms, effective at 7ms: original restored.
        rc.on_link_event(&topo, failed, true, SimTime::from_millis(5));
        let mut pkt = probe(as1, as3, SimTime::from_millis(8));
        rc.ingress(&topo, as1, &mut pkt).unwrap();
        assert_eq!(*pkt.route.as_ref().unwrap().route_id, original.route_id);
        // Reverting is not another "recovery".
        assert_eq!(log.lock().unwrap().flows.len(), 1);
    }

    #[test]
    fn encode_serves_the_detour_once_the_notice_lands() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let failed = topo.expect_link("SW7", "SW13");
        let mut rc = RecoveringController::new(RecoveryConfig {
            notification_delay: SimTime::from_millis(2),
            protection: Protection::None,
        });
        let req = EncodeRequest::new(as1, as3);
        let original = rc.encode(&topo, &req, SimTime::ZERO).unwrap();
        // Re-encoding the same request serves the same route...
        assert_eq!(rc.encode(&topo, &req, SimTime::ZERO).unwrap(), original);
        // ...a different protection level re-installs...
        let protected = rc
            .encode(
                &topo,
                &req.clone().with_protection(Protection::AutoFull),
                SimTime::ZERO,
            )
            .unwrap();
        assert_ne!(protected.route.route_id, original.route.route_id);
        // ...and after a failure notice becomes effective, the outcome
        // is the detour, header included.
        rc.encode(&topo, &req, SimTime::ZERO).unwrap();
        rc.on_link_event(&topo, failed, false, SimTime::from_millis(1));
        let detour = rc.encode(&topo, &req, SimTime::from_millis(4)).unwrap();
        assert_ne!(detour.route.route_id, original.route.route_id);
        assert_eq!(detour.header.unpack(), detour.route.route_id);
    }

    #[test]
    fn unaffected_routes_keep_their_ids() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as2 = topo.expect("AS2");
        let as3 = topo.expect("AS3");
        let mut rc = RecoveringController::new(RecoveryConfig::default());
        install(&mut rc, &topo, as1, as3);
        let other = install(&mut rc, &topo, as2, as3);
        // AS2's shortest path (SW23, SW17, SW37, SW29) does not cross
        // SW7-SW13.
        rc.on_link_event(&topo, topo.expect_link("SW7", "SW13"), false, SimTime::ZERO);
        let mut pkt = probe(as2, as3, SimTime::from_millis(10));
        rc.ingress(&topo, as2, &mut pkt).unwrap();
        assert_eq!(*pkt.route.as_ref().unwrap().route_id, other.route_id);
        assert!(rc.log_handle().lock().unwrap().flows.is_empty());
    }

    #[test]
    fn survives_a_poisoned_log_mutex() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let failed = topo.expect_link("SW7", "SW13");
        let mut rc = RecoveringController::new(RecoveryConfig {
            notification_delay: SimTime::ZERO,
            protection: Protection::None,
        });
        let original = install(&mut rc, &topo, as1, as3);

        // Poison the shared log: a panic while holding the lock (e.g. a
        // crashing telemetry reader in another worker) used to make every
        // later `.expect("recovery log lock")` cascade the panic.
        let log = rc.log_handle();
        let poisoner = std::thread::spawn({
            let log = Arc::clone(&log);
            move || {
                let _guard = log.lock().unwrap();
                panic!("poison the recovery log");
            }
        });
        assert!(poisoner.join().is_err());
        assert!(log.lock().is_err(), "mutex must actually be poisoned");

        // The controller still processes the failure and records both the
        // notice and the flow recovery.
        rc.on_link_event(&topo, failed, false, SimTime::from_millis(1));
        let mut pkt = probe(as1, as3, SimTime::from_millis(2));
        rc.ingress(&topo, as1, &mut pkt).unwrap();
        assert_ne!(*pkt.route.as_ref().unwrap().route_id, original.route_id);
        let snapshot = log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        assert_eq!(snapshot.notices.len(), 1);
        assert_eq!(snapshot.flows.len(), 1);
    }

    #[test]
    fn keeps_the_original_id_when_no_detour_exists() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let uplink = topo.expect_link("AS1", "SW10");
        let mut rc = RecoveringController::new(RecoveryConfig::default());
        let original = install(&mut rc, &topo, as1, as3);
        // AS1's only uplink fails: no alternative path exists.
        rc.on_link_event(&topo, uplink, false, SimTime::ZERO);
        let mut pkt = probe(as1, as3, SimTime::from_millis(10));
        rc.ingress(&topo, as1, &mut pkt).unwrap();
        assert_eq!(*pkt.route.as_ref().unwrap().route_id, original.route_id);
        assert!(rc.log_handle().lock().unwrap().flows.is_empty());
    }
}
