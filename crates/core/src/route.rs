//! Route specification and CRT encoding (paper §2.2).
//!
//! A [`RouteSpec`] is what the controller decides: a primary node path
//! plus zero or more *driven deflection forwarding segments* — directed
//! `(switch, next-hop)` pairs that are folded into the same route ID so
//! deflected packets get driven back toward the destination. Encoding a
//! spec yields an [`EncodedRoute`]: the integer route ID, its basis, and
//! the header bit length of Eq. 9.

use crate::error::KarError;
use kar_rns::{crt_encode, residue, BigUint, RnsBasis};
use kar_topology::{NodeId, PortIx, Topology};

/// A planned route: primary path plus protection segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteSpec {
    /// The primary node path, edge to edge (e.g. AS1, SW10, …, AS3).
    pub primary: Vec<NodeId>,
    /// Driven-deflection segments `(from_switch, towards_neighbor)`.
    /// Order is irrelevant (the CRT sum commutes).
    pub protection: Vec<(NodeId, NodeId)>,
}

impl RouteSpec {
    /// A spec with no protection.
    pub fn unprotected(primary: Vec<NodeId>) -> Self {
        RouteSpec {
            primary,
            protection: Vec::new(),
        }
    }

    /// A spec with explicit protection segments.
    pub fn protected(primary: Vec<NodeId>, protection: Vec<(NodeId, NodeId)>) -> Self {
        RouteSpec {
            primary,
            protection,
        }
    }
}

/// A fully encoded route: what the ingress edge stamps on packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedRoute {
    /// The route ID `R` (Eq. 4).
    pub route_id: BigUint,
    /// The pairwise-coprime switch IDs folded into `R`.
    pub basis: RnsBasis,
    /// The `(switch_id, port)` residues that were encoded, primary first.
    pub pairs: Vec<(u64, PortIx)>,
    /// Uplink port at the ingress edge (first hop).
    pub uplink: PortIx,
}

impl EncodedRoute {
    /// Encodes a [`RouteSpec`] over a topology.
    ///
    /// # Errors
    ///
    /// * [`KarError::NotAdjacent`] — consecutive primary nodes or a
    ///   protection segment without a connecting link;
    /// * [`KarError::NotACoreSwitch`] — a protection segment starting at
    ///   an edge node;
    /// * [`KarError::SwitchConflict`] — a protection segment asking a
    ///   switch already in the route ID for a different port (each switch
    ///   has one residue — the paper's intrinsic constraint);
    /// * [`KarError::NoPath`] — a primary path shorter than two nodes;
    /// * [`KarError::Rns`] — non-coprime IDs or a port not below its
    ///   switch ID.
    ///
    /// Protection segments that agree with an already-encoded port are
    /// deduplicated silently (folding the same tree twice is harmless).
    ///
    /// # Examples
    ///
    /// ```
    /// use kar::{EncodedRoute, RouteSpec};
    /// use kar_topology::{topo15, paths};
    ///
    /// let topo = topo15::build();
    /// let spec = RouteSpec::unprotected(topo15::primary_route(&topo));
    /// let route = EncodedRoute::encode(&topo, &spec)?;
    /// assert_eq!(route.bit_length(), 15); // Table 1, unprotected
    /// # Ok::<(), kar::KarError>(())
    /// ```
    pub fn encode(topo: &Topology, spec: &RouteSpec) -> Result<EncodedRoute, KarError> {
        let (pairs, uplink) = EncodedRoute::collect_pairs(topo, spec)?;
        EncodedRoute::from_pairs(pairs, uplink)
    }

    /// Resolves a spec into its `(switch_id, port)` residue pairs plus
    /// the ingress uplink — the topology-walking half of [`Self::encode`],
    /// with no CRT arithmetic.
    ///
    /// The returned pairs (with the uplink) fully determine the encoded
    /// route, which is what makes route encoding memoizable (see
    /// [`crate::cache::EncodingCache`]).
    ///
    /// # Errors
    ///
    /// The path/adjacency/conflict conditions of [`Self::encode`].
    pub fn collect_pairs(
        topo: &Topology,
        spec: &RouteSpec,
    ) -> Result<(Vec<(u64, PortIx)>, PortIx), KarError> {
        if spec.primary.len() < 2 {
            let n = spec.primary.first().copied().unwrap_or(NodeId(0));
            return Err(KarError::NoPath { src: n, dst: n });
        }
        let uplink =
            topo.port_towards(spec.primary[0], spec.primary[1])
                .ok_or(KarError::NotAdjacent {
                    from: spec.primary[0],
                    to: spec.primary[1],
                })?;
        let mut pairs: Vec<(u64, PortIx)> = Vec::new();
        for w in spec.primary.windows(2) {
            let port = topo.port_towards(w[0], w[1]).ok_or(KarError::NotAdjacent {
                from: w[0],
                to: w[1],
            })?;
            if let Some(id) = topo.switch_id(w[0]) {
                push_pair(&mut pairs, id, port)?;
            }
        }
        for &(from, towards) in &spec.protection {
            let id = topo
                .switch_id(from)
                .ok_or(KarError::NotACoreSwitch { node: from })?;
            let port = topo
                .port_towards(from, towards)
                .ok_or(KarError::NotAdjacent { from, to: towards })?;
            push_pair(&mut pairs, id, port)?;
        }
        Ok((pairs, uplink))
    }

    /// Seals residue pairs into a route ID — the CRT-arithmetic half of
    /// [`Self::encode`].
    ///
    /// # Errors
    ///
    /// [`KarError::Rns`] on non-coprime IDs or a port not below its
    /// switch ID.
    pub fn from_pairs(pairs: Vec<(u64, PortIx)>, uplink: PortIx) -> Result<EncodedRoute, KarError> {
        let basis = RnsBasis::new(pairs.iter().map(|&(id, _)| id).collect())?;
        let ports: Vec<u64> = pairs.iter().map(|&(_, p)| p).collect();
        let route_id = crt_encode(&basis, &ports)?;
        Ok(EncodedRoute {
            route_id,
            basis,
            pairs,
            uplink,
        })
    }

    /// Header bits required for this route ID (Eq. 9).
    pub fn bit_length(&self) -> u32 {
        self.basis.bit_length()
    }

    /// The output port this route ID produces at a switch (Eq. 3) —
    /// meaningful for any switch ID, encoded or not (non-encoded switches
    /// see a pseudo-random residue, which is what deflection exploits).
    pub fn port_at(&self, switch_id: u64) -> PortIx {
        residue(&self.route_id, switch_id)
    }

    /// Whether `switch_id` was explicitly folded into this route.
    pub fn contains_switch(&self, switch_id: u64) -> bool {
        self.pairs.iter().any(|&(id, _)| id == switch_id)
    }
}

fn push_pair(pairs: &mut Vec<(u64, PortIx)>, id: u64, port: PortIx) -> Result<(), KarError> {
    match pairs.iter().find(|&&(e, _)| e == id) {
        Some(&(_, existing)) if existing == port => Ok(()), // harmless duplicate
        Some(&(_, existing)) => Err(KarError::SwitchConflict {
            switch_id: id,
            existing_port: existing,
            requested_port: port,
        }),
        None => {
            pairs.push((id, port));
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_topology::{topo15, LinkParams, TopologyBuilder};

    #[test]
    fn paper_example_encoding() {
        // Rebuild Fig. 1: S - SW4 - SW7 - SW11 - D with SW5 hanging off
        // SW7 and reaching SW11 (the protection branch).
        let mut b = TopologyBuilder::new();
        let s = b.edge("S");
        let sw4 = b.core("SW4", 4);
        let sw7 = b.core("SW7", 7);
        let sw11 = b.core("SW11", 11);
        let d = b.edge("D");
        let sw5 = b.core("SW5", 5);
        b.link(sw4, s, LinkParams::default()); // SW4 port 0 = S
        b.link(sw7, sw4, LinkParams::default()); // SW7 port 0 = SW4, SW4 port 1 = SW7
        b.link(sw7, sw5, LinkParams::default()); // SW7 port 1 = SW5, SW5 port 0 = SW7
        b.link(sw7, sw11, LinkParams::default()); // SW7 port 2 = SW11
        b.link(sw11, d, LinkParams::default()); // SW11 port 1 = D... port 0 = SW7
        b.link(sw5, sw11, LinkParams::default()); // SW5 port 1 = SW11
        let topo = b.build().unwrap();

        // Paper: switches {4,7,11} ports {0,2,0}. Our port numbering gives
        // SW4→SW7 = 1, SW7→SW11 = 2, SW11→D = 1; different numbers, same
        // mechanics. Force the paper's exact numbers with a hand check of
        // the residues instead.
        let spec = RouteSpec::unprotected(vec![s, sw4, sw7, sw11, d]);
        let route = EncodedRoute::encode(&topo, &spec).unwrap();
        assert_eq!(route.port_at(4), topo.port_towards(sw4, sw7).unwrap());
        assert_eq!(route.port_at(7), topo.port_towards(sw7, sw11).unwrap());
        assert_eq!(route.port_at(11), topo.port_towards(sw11, d).unwrap());

        // Fold in the SW5 → SW11 driven deflection segment.
        let spec = RouteSpec::protected(vec![s, sw4, sw7, sw11, d], vec![(sw5, sw11)]);
        let protected = EncodedRoute::encode(&topo, &spec).unwrap();
        // Primary residues unchanged (disjoint extension).
        assert_eq!(protected.port_at(4), route.port_at(4));
        assert_eq!(protected.port_at(7), route.port_at(7));
        assert_eq!(protected.port_at(11), route.port_at(11));
        assert_eq!(protected.port_at(5), topo.port_towards(sw5, sw11).unwrap());
        assert!(protected.contains_switch(5));
        assert!(!route.contains_switch(5));
    }

    #[test]
    fn table1_bit_lengths_through_encoded_routes() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let unprot = EncodedRoute::encode(&topo, &RouteSpec::unprotected(primary.clone())).unwrap();
        assert_eq!(unprot.bit_length(), 15);
        assert_eq!(unprot.pairs.len(), 4);

        let partial = EncodedRoute::encode(
            &topo,
            &RouteSpec::protected(
                primary.clone(),
                topo15::protection_pairs(&topo, &topo15::PARTIAL_PROTECTION),
            ),
        )
        .unwrap();
        assert_eq!(partial.bit_length(), 28);
        assert_eq!(partial.pairs.len(), 7);

        let mut full_pairs = topo15::protection_pairs(&topo, &topo15::PARTIAL_PROTECTION);
        full_pairs.extend(topo15::protection_pairs(
            &topo,
            &topo15::FULL_EXTRA_PROTECTION,
        ));
        let full = EncodedRoute::encode(&topo, &RouteSpec::protected(primary, full_pairs)).unwrap();
        assert_eq!(full.bit_length(), 43);
        assert_eq!(full.pairs.len(), 10);
    }

    #[test]
    fn conflict_detection() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        // SW7 is on the primary path exiting toward SW13; asking it to
        // also exit toward SW11 must conflict.
        let sw7 = topo.expect("SW7");
        let sw11 = topo.expect("SW11");
        let err = EncodedRoute::encode(
            &topo,
            &RouteSpec::protected(primary.clone(), vec![(sw7, sw11)]),
        )
        .unwrap_err();
        assert!(matches!(err, KarError::SwitchConflict { switch_id: 7, .. }));
        // Re-stating the same port is fine (dedup).
        let sw13 = topo.expect("SW13");
        let ok =
            EncodedRoute::encode(&topo, &RouteSpec::protected(primary, vec![(sw7, sw13)])).unwrap();
        assert_eq!(ok.pairs.len(), 4);
    }

    #[test]
    fn rejects_malformed_specs() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let sw7 = topo.expect("SW7");
        assert!(matches!(
            EncodedRoute::encode(&topo, &RouteSpec::unprotected(vec![as1])),
            Err(KarError::NoPath { .. })
        ));
        assert!(matches!(
            EncodedRoute::encode(&topo, &RouteSpec::unprotected(vec![as1, as3])),
            Err(KarError::NotAdjacent { .. })
        ));
        // Protection segment from an edge node.
        let primary = topo15::primary_route(&topo);
        assert!(matches!(
            EncodedRoute::encode(
                &topo,
                &RouteSpec::protected(primary.clone(), vec![(as1, sw7)])
            ),
            Err(KarError::NotACoreSwitch { .. })
        ));
        // Protection segment between non-neighbours.
        let sw43 = topo.expect("SW43");
        assert!(matches!(
            EncodedRoute::encode(&topo, &RouteSpec::protected(primary, vec![(sw43, as3)])),
            Err(KarError::NotAdjacent { .. })
        ));
    }

    #[test]
    fn uplink_is_first_hop_port() {
        let topo = topo15::build();
        let route =
            EncodedRoute::encode(&topo, &RouteSpec::unprotected(topo15::primary_route(&topo)))
                .unwrap();
        let as1 = topo.expect("AS1");
        assert_eq!(
            route.uplink,
            topo.port_towards(as1, topo.expect("SW10")).unwrap()
        );
    }
}
