//! # kar — Key-for-Any-Route: stateless resilient source routing
//!
//! Rust reproduction of **"KAR: Key-for-Any-Route, a Resilient Routing
//! System"** (Gomes, Liberato, Dominicini, Ribeiro, Martinello —
//! DSN-W 2016). KAR encodes a forwarding path into a single integer
//! *route ID* via the Residue Number System: every core switch holds a
//! coprime *switch ID* and forwards each packet out of port
//! `route_id mod switch_id` — no forwarding tables in the core. On a
//! link failure, switches *deflect* packets instead of dropping them,
//! and *driven deflection forwarding paths* folded into the same route
//! ID steer deflected packets back to their destination, loop-free.
//!
//! The crate provides:
//!
//! * [`RouteSpec`] / [`EncodedRoute`] — route planning and CRT encoding
//!   (paper §2.2, Eq. 1–9);
//! * [`DeflectionTechnique`] / [`KarForwarder`] — the HP, AVP and NIP
//!   deflection dataplanes (paper §2.1, Algorithm 1);
//! * [`Protection`] and the planners in [`protection`] — unprotected,
//!   explicit, full, and bit-budgeted driven-deflection trees;
//! * [`Controller`] — route selection, route-ID computation, and the
//!   paper's wrong-edge re-encoding;
//! * [`EncodingCache`] — a shared, thread-safe route-encoding memo for
//!   repeated-route workloads (experiment sweeps);
//! * [`wire`] — the canonical on-the-wire route-ID serialization
//!   ([`RouteHeader`], fixed-width and varint framings) shared by the
//!   simulator's packet path and the `kar-service` daemon;
//! * [`EncodeRequest`] / [`EncodeOutcome`] — the one public encode
//!   entry point (served by [`KarNetwork::encode`],
//!   [`Controller::encode`] and [`RecoveringController::encode`]);
//! * [`KarNetwork`] — one-stop wiring into the `kar-simnet` simulator;
//! * [`analysis`] — static driven-walk and failure-coverage checks;
//! * [`recovery`] — a failure-*reactive* controller loop that re-encodes
//!   affected routes after detection + notification delays, with
//!   per-flow recovery-latency accounting;
//! * [`verify`] — an exhaustive resilience verifier that classifies
//!   every trajectory of a route under a failure set (delivered /
//!   wrong-edge / ttl-exceeded / blackhole / loop, with witnesses).
//!
//! # Examples
//!
//! Encode the paper's worked example and protect it:
//!
//! ```
//! use kar::{DeflectionTechnique, EncodeRequest, KarNetwork, Protection};
//! use kar_simnet::{FlowId, PacketKind, SimTime};
//! use kar_topology::topo15;
//!
//! let topo = topo15::build();
//! let mut net = KarNetwork::new(&topo, DeflectionTechnique::Nip);
//! let (as1, as3) = (topo.expect("AS1"), topo.expect("AS3"));
//! let req = EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull);
//! let outcome = net.encode(&req)?;
//! assert!(outcome.route.bit_length() >= 15);
//! assert_eq!(outcome.header.unpack(), outcome.route.route_id);
//!
//! let mut sim = net.into_sim();
//! sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW7", "SW13"));
//! sim.inject(as1, as3, FlowId(0), 0, PacketKind::Probe, 1000);
//! sim.run_to_quiescence();
//! assert_eq!(sim.stats().delivered, 1); // deflected, then driven home
//! # Ok::<(), kar::KarError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod chain;
mod controller;
mod deflect;
mod error;
pub mod hier;
pub mod multipath;
mod network;
pub mod protection;
pub mod recovery;
mod route;
pub mod verify;
pub mod wire;

pub use cache::{CacheStats, EncodingCache};
pub use chain::chain_path;
pub use controller::{Controller, EncodeOutcome, EncodeRequest, KarConfig, ReroutePolicy};
pub use deflect::{DeflectionTechnique, KarForwarder};
pub use error::KarError;
pub use hier::{
    split_segments, verify_hier_resilience, verify_hier_route, HierController, HierReport,
    HierRoute, HierStats, HierSweep, OutcomeCounts, Segment,
};
pub use multipath::{edge_disjoint_paths, MultipathEdge};
pub use network::KarNetwork;
pub use protection::Protection;
pub use recovery::{FlowRecovery, RecoveringController, RecoveryConfig, RecoveryLog};
pub use route::{EncodedRoute, RouteSpec};
pub use verify::{
    min_failure_set, verify_failure_sets, verify_route, verify_single_failures, BreakingPoint,
    FailureSetResult, KSweep, Outcome, PairVerifier, SweepStats, VerifyReport, VerifySummary,
};
pub use wire::{RouteHeader, WireError, WireMode};

/// The working set for building and running a KAR simulation.
///
/// `use kar::prelude::*;` brings in the network builder, the paper's
/// deflection techniques and protection levels, and the simulator/
/// topology types every driver touches (`Sim`, `SimTime`, `FlowId`,
/// `Topology`, `NodeId`, …).
pub mod prelude {
    pub use crate::network::KarNetworkBuilder;
    pub use crate::{
        Controller, DeflectionTechnique, EncodeOutcome, EncodeRequest, EncodedRoute, EncodingCache,
        KarError, KarForwarder, KarNetwork, Protection, RecoveryConfig, RecoveryLog, ReroutePolicy,
        RouteHeader, RouteSpec, WireMode,
    };
    pub use kar_simnet::{FlowId, Packet, PacketKind, Sim, SimConfig, SimTime, Stats};
    pub use kar_topology::{NodeId, Topology};
}
