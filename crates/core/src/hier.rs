//! Two-level hierarchical KAR: per-domain route IDs with boundary
//! re-encoding.
//!
//! Flat KAR folds every core switch of a path into one route ID, so the
//! ID's bit length grows with path length — the key-growth wall charted
//! by `BENCH_scale.json` (a ring/256 needs 1265-bit IDs unprotected).
//! Hierarchical KAR routes over a [`Partition`] of the topology into
//! domains: the ingress edge stamps a route ID encoded over only the
//! *first* domain's coprime set, and every time the packet crosses a
//! domain-boundary link the entry switch re-stamps the tag with the
//! next per-domain segment. A boundary ingress is a *planned* re-encode
//! — the same §2.1 wrong-edge machinery the paper uses reactively, run
//! proactively at a known place — so route-ID size is bounded by the
//! longest intra-domain path instead of the network diameter.
//!
//! [`HierController`] is the [`EdgeLogic`] implementing this: ingress
//! stamps the first segment, [`EdgeLogic::core_ingress`] re-stamps at
//! boundary entries (from a deterministic `(entry, dst)` segment memo),
//! and wrong-edge packets are rescued by hierarchical recompute exactly
//! like the flat controller's [`crate::ReroutePolicy::Recompute`].
//! Every boundary ingress re-stamps — the planned handoff at the end of
//! a segment and deflection spill-over into a neighbouring domain
//! alike. Spill-over re-stamping is what makes the failure-aware
//! posture self-healing: a deflected wanderer is put back on a valid
//! plan at the first boundary it stumbles into. The flip side, measured
//! by the `fig_hier` transient analysis, is that *before* the
//! controller learns of a failure, a fresh segment can point a
//! deflected packet straight back at the link that deflected it — so
//! the hierarchical transient can exhibit wander-loops on host-sparse
//! topologies where flat KAR's whole-path residues happen to absorb the
//! wanderer. Once the failure notice lands (the deployed posture,
//! [`HierController::set_failure_aware`]), planned segments avoid the
//! failure and the verifier finds no loop or blackhole classes at all.
//!
//! [`verify_hier_route`] extends the exhaustive verifier of
//! [`crate::verify`] to segment-composed routes: it explores the packet
//! NFA over `(active segment, switch, in-port, deflected)` states,
//! switching segments at boundary crossings exactly as the controller
//! would, and classifies the case with the same [`Outcome`] precedence.
//! [`verify_hier_resilience`] sweeps k=1 exhaustively (plus sampled
//! k=2) for both flat and hierarchical encodings and reports whether
//! hierarchy introduced any *new* violation class — the gate the
//! `fig_hier` benchmark and the regression tests enforce.

use crate::cache::EncodingCache;
use crate::controller::bfs_avoiding;
use crate::deflect::DeflectionTechnique;
use crate::error::KarError;
use crate::protection::{encode_with_protection, Protection};
use crate::route::EncodedRoute;
use crate::verify::{possible_moves, step, tarjan_sccs, Outcome, State, Terminal};
use crate::wire::RouteHeader;
use crate::ReroutePolicy;
use kar_simnet::{EdgeLogic, Packet, RerouteDecision, RouteArena, RouteTag, SimTime};
use kar_topology::{paths, LinkId, NodeId, Partition, PortIx, Topology};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One per-domain piece of a hierarchical route: the node path the
/// segment covers (ending at the next domain's entry switch, or at the
/// destination edge) and its CRT encoding over this domain's switches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Segment node path. The last node is the next segment's entry
    /// core (for boundary segments) or the destination edge (for the
    /// final one); it contributes no residue, only the exit direction.
    pub path: Vec<NodeId>,
    /// The segment's encoded route (residues for this domain only).
    pub route: EncodedRoute,
}

/// A hierarchical route: the chain of per-domain segments a packet is
/// re-stamped with on its way from ingress to destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierRoute {
    /// Segments in traversal order; `segments[0]` is what the ingress
    /// edge stamps.
    pub segments: Vec<Segment>,
}

impl HierRoute {
    /// The largest per-segment header bit length — the bits-per-packet
    /// figure of hierarchical KAR (a packet carries one segment at a
    /// time).
    pub fn max_bits(&self) -> u32 {
        self.segments
            .iter()
            .map(|s| s.route.bit_length())
            .max()
            .unwrap_or(0)
    }

    /// Number of boundary re-encodes along the nominal path.
    pub fn reencodes(&self) -> usize {
        self.segments.len().saturating_sub(1)
    }

    /// Total hop count across all segments (edge to edge).
    pub fn nominal_hops(&self) -> usize {
        self.segments.iter().map(|s| s.path.len() - 1).sum()
    }
}

/// Splits an edge-to-edge node path at domain-boundary links.
///
/// Every returned piece ends with the first node *after* the boundary
/// (the next domain's entry switch) so its last window still yields the
/// exit port of the boundary switch; the next piece starts at that same
/// entry switch. A path that never crosses a boundary comes back as one
/// piece.
///
/// # Errors
///
/// [`KarError::NotAdjacent`] when consecutive path nodes share no link.
pub fn split_segments(
    topo: &Topology,
    partition: &Partition,
    path: &[NodeId],
) -> Result<Vec<Vec<NodeId>>, KarError> {
    let mut segments = Vec::new();
    let mut cur = vec![path[0]];
    for w in path.windows(2) {
        let link = topo.link_between(w[0], w[1]).ok_or(KarError::NotAdjacent {
            from: w[0],
            to: w[1],
        })?;
        cur.push(w[1]);
        if partition.is_boundary(link) {
            segments.push(cur);
            cur = vec![w[1]];
        }
    }
    if cur.len() > 1 {
        segments.push(cur);
    }
    Ok(segments)
}

/// Shared counters of one [`HierController`] — kept behind an `Arc` so
/// experiment drivers can read them after the controller moved into the
/// simulation.
#[derive(Debug, Default)]
pub struct HierStats {
    /// Segments encoded (ingress, boundary, and rescue re-encodes).
    pub segments_encoded: AtomicU64,
    /// Largest segment header bit length seen.
    pub max_segment_bits: AtomicU64,
    /// Boundary ingresses served from the segment memo.
    pub boundary_stamps: AtomicU64,
    /// Boundary ingresses that had to plan a fresh segment.
    pub boundary_recomputes: AtomicU64,
    /// Wrong-edge rescues (§2.1 recompute, hierarchical flavour).
    pub wrong_edge_reencodes: AtomicU64,
}

impl HierStats {
    fn note_segment(&self, route: &EncodedRoute) {
        self.segments_encoded.fetch_add(1, Ordering::Relaxed);
        self.max_segment_bits
            .fetch_max(route.bit_length() as u64, Ordering::Relaxed);
    }
}

/// The hierarchical KAR controller and edge logic.
///
/// Segment planning is a *pure function* of `(entry, dst)` on the
/// planning topology — `(entry, dst)` segments are memoized but never
/// depend on which packet asked first — so simulation runs stay
/// deterministic and the verifier can replay the controller's decisions
/// exactly.
#[derive(Debug)]
pub struct HierController {
    partition: Arc<Partition>,
    reroute: ReroutePolicy,
    cache: Option<Arc<EncodingCache>>,
    arena: RouteArena,
    /// `(src edge, dst edge)` → first segment, stamped at ingress.
    ingress_tbl: HashMap<(NodeId, NodeId), Segment>,
    /// `(entry core, dst edge)` → that entry's segment memo.
    segment_tbl: HashMap<(NodeId, NodeId), Segment>,
    /// Installed ingress pairs with their protection, replayed in
    /// deterministic order when a failure notice lands.
    installed: BTreeMap<(NodeId, NodeId), Protection>,
    failed: HashSet<LinkId>,
    failure_aware: bool,
    stats: Arc<HierStats>,
}

impl HierController {
    /// Creates a controller routing over `partition` with default
    /// settings (recompute-on-wrong-edge, failure-unaware — the paper's
    /// controller posture).
    pub fn new(partition: Arc<Partition>) -> Self {
        HierController {
            partition,
            reroute: ReroutePolicy::default(),
            cache: None,
            arena: RouteArena::default(),
            ingress_tbl: HashMap::new(),
            segment_tbl: HashMap::new(),
            installed: BTreeMap::new(),
            failed: HashSet::new(),
            failure_aware: false,
            stats: Arc::new(HierStats::default()),
        }
    }

    /// Sets the wrong-edge policy.
    pub fn with_reroute(mut self, policy: ReroutePolicy) -> Self {
        self.reroute = policy;
        self
    }

    /// Routes segment encoding through a shared [`EncodingCache`].
    pub fn with_encoding_cache(mut self, cache: Arc<EncodingCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// When `true`, planning avoids links reported down via
    /// [`EdgeLogic::on_link_event`], and every such notice flushes the
    /// segment memo and replans installed pairs (in deterministic pair
    /// order). The default `false` matches the paper's controller,
    /// which ignores failure notifications.
    pub fn set_failure_aware(&mut self, aware: bool) {
        self.failure_aware = aware;
    }

    /// Handle onto the shared counters (keep a clone before moving the
    /// controller into a simulation).
    pub fn stats(&self) -> Arc<HierStats> {
        Arc::clone(&self.stats)
    }

    /// The partition this controller routes over.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Shortest path on the planning topology (failure-aware planning
    /// avoids known-down links).
    fn select_path(
        &self,
        topo: &Topology,
        from: NodeId,
        dst: NodeId,
    ) -> Result<Vec<NodeId>, KarError> {
        let path = if self.failure_aware && !self.failed.is_empty() {
            bfs_avoiding(topo, from, dst, &self.failed)
        } else {
            paths::bfs_shortest_path(topo, from, dst)
        };
        path.ok_or(KarError::NoPath { src: from, dst })
    }

    fn encode_path(
        &self,
        topo: &Topology,
        primary: Vec<NodeId>,
        protection: &Protection,
    ) -> Result<EncodedRoute, KarError> {
        let route = match &self.cache {
            Some(cache) => cache.encode_with_protection(topo, primary, protection)?,
            None => encode_with_protection(topo, primary, protection)?,
        };
        self.stats.note_segment(&route);
        Ok(route)
    }

    /// Plans the first segment of the shortest route `from → dst`
    /// (either an ingress edge or a boundary-entry core).
    fn first_segment(
        &mut self,
        topo: &Topology,
        from: NodeId,
        dst: NodeId,
        protection: &Protection,
    ) -> Result<Segment, KarError> {
        let path = self.select_path(topo, from, dst)?;
        let mut pieces = split_segments(topo, &self.partition, &path)?;
        if pieces.is_empty() {
            return Err(KarError::NoPath { src: from, dst });
        }
        let piece = pieces.swap_remove(0);
        let route = self.encode_path(topo, piece.clone(), protection)?;
        Ok(Segment { path: piece, route })
    }

    /// The memoized segment for a boundary entry: the first segment of
    /// the shortest route from `entry` to `dst`. Pure in `(entry, dst)`
    /// — the memo only caches, it never changes the answer.
    ///
    /// # Errors
    ///
    /// [`KarError::NoPath`] when `dst` is unreachable from `entry` on
    /// the planning topology.
    pub fn segment_from(
        &mut self,
        topo: &Topology,
        entry: NodeId,
        dst: NodeId,
    ) -> Result<Segment, KarError> {
        if let Some(seg) = self.segment_tbl.get(&(entry, dst)) {
            return Ok(seg.clone());
        }
        // Boundary re-encodes are unprotected, like the paper's §2.1
        // reactive recompute.
        let seg = self.first_segment(topo, entry, dst, &Protection::None)?;
        self.segment_tbl.insert((entry, dst), seg.clone());
        Ok(seg)
    }

    /// Installs a hierarchical route for `src → dst`: plans the segment
    /// chain along shortest paths, stores the first segment for ingress
    /// stamping and each boundary segment in the `(entry, dst)` memo,
    /// and returns the whole chain (for bit-length accounting and
    /// verification).
    ///
    /// `protection` applies to the *ingress* segment only; boundary
    /// re-encodes are unprotected like the paper's reactive recompute.
    ///
    /// # Errors
    ///
    /// [`KarError::NoPath`] when unreachable, plus any encoding error.
    pub fn install(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        protection: &Protection,
    ) -> Result<HierRoute, KarError> {
        let first = self.first_segment(topo, src, dst, protection)?;
        self.ingress_tbl.insert((src, dst), first.clone());
        self.installed.insert((src, dst), protection.clone());
        let mut segments = vec![first];
        // Follow the chain of entry switches; each boundary segment is
        // strictly closer to dst than the previous entry, so this
        // terminates well inside the node-count guard.
        for _ in 0..topo.node_count() {
            let tail = *segments
                .last()
                .expect("segments is non-empty")
                .path
                .last()
                .expect("segment paths are non-empty");
            if tail == dst {
                return Ok(HierRoute { segments });
            }
            segments.push(self.segment_from(topo, tail, dst)?);
        }
        Err(KarError::NoPath { src, dst })
    }

    /// The installed ingress route for `(src, dst)`, if any.
    pub fn ingress_route(&self, src: NodeId, dst: NodeId) -> Option<&EncodedRoute> {
        self.ingress_tbl.get(&(src, dst)).map(|s| &s.route)
    }

    /// The installed ingress segment for `(src, dst)`, if any.
    pub fn ingress_segment(&self, src: NodeId, dst: NodeId) -> Option<&Segment> {
        self.ingress_tbl.get(&(src, dst))
    }

    fn stamp(&mut self, pkt: &mut Packet, seg: &Segment) {
        let header = RouteHeader::for_route(&seg.route).expect("segments fit their own field");
        pkt.route = Some(RouteTag::new(self.arena.intern_wire(header.as_bytes())));
    }
}

impl EdgeLogic for HierController {
    fn ingress(&mut self, _topo: &Topology, edge: NodeId, pkt: &mut Packet) -> Option<PortIx> {
        let seg = self.ingress_tbl.get(&(edge, pkt.dst))?.clone();
        self.stamp(pkt, &seg);
        Some(seg.route.uplink)
    }

    fn core_ingress(
        &mut self,
        topo: &Topology,
        node: NodeId,
        in_port: Option<PortIx>,
        pkt: &mut Packet,
    ) {
        if pkt.route.is_none() {
            return;
        }
        let Some(p) = in_port else { return };
        let Some(&link) = topo.node(node).ports.get(p as usize) else {
            return;
        };
        if !self.partition.is_boundary(link) {
            return;
        }
        // The packet just entered a new domain — planned handoff or
        // deflection spill-over alike, a boundary ingress is a planned
        // re-encode: re-stamp with this entry's segment toward the
        // destination (a fresh tag, so the deflection mark clears).
        // Spill-over recovery is what makes the failure-aware posture
        // whole: a deflected wanderer is put back on a valid plan at the
        // first boundary it stumbles into. On a planning failure (the
        // destination became unreachable) the tag is left alone and
        // deflection/TTL take over, like a missed wrong-edge rescue.
        let hit = self.segment_tbl.contains_key(&(node, pkt.dst));
        if let Ok(seg) = self.segment_from(topo, node, pkt.dst) {
            if hit {
                self.stats.boundary_stamps.fetch_add(1, Ordering::Relaxed);
            } else {
                self.stats
                    .boundary_recomputes
                    .fetch_add(1, Ordering::Relaxed);
            }
            self.stamp(pkt, &seg);
        }
    }

    fn reroute(&mut self, topo: &Topology, edge: NodeId, pkt: &mut Packet) -> RerouteDecision {
        match self.reroute {
            ReroutePolicy::Drop => RerouteDecision::Drop,
            ReroutePolicy::Bounce => RerouteDecision::Forward {
                port: 0,
                delay: SimTime::ZERO,
            },
            ReroutePolicy::Recompute { latency } => {
                let seg = match self.ingress_tbl.get(&(edge, pkt.dst)) {
                    Some(s) => s.clone(),
                    None => {
                        let Ok(seg) = self.first_segment(topo, edge, pkt.dst, &Protection::None)
                        else {
                            return RerouteDecision::Drop;
                        };
                        self.ingress_tbl.insert((edge, pkt.dst), seg.clone());
                        seg
                    }
                };
                self.stats
                    .wrong_edge_reencodes
                    .fetch_add(1, Ordering::Relaxed);
                self.stamp(pkt, &seg);
                RerouteDecision::Forward {
                    port: seg.route.uplink,
                    delay: latency,
                }
            }
        }
    }

    fn on_link_event(&mut self, topo: &Topology, link: LinkId, up: bool, _now: SimTime) {
        if up {
            self.failed.remove(&link);
        } else {
            self.failed.insert(link);
        }
        if !self.failure_aware {
            return;
        }
        // Segments planned under the old failure set may route straight
        // into the change; flush everything and replan the installed
        // pairs in deterministic order. Pairs that became unreachable
        // drop out of the ingress table (their packets are dropped at
        // ingress, like the flat controller's NoPath).
        self.segment_tbl.clear();
        self.ingress_tbl.clear();
        let pairs: Vec<((NodeId, NodeId), Protection)> = self
            .installed
            .iter()
            .map(|(&k, p)| (k, p.clone()))
            .collect();
        for ((src, dst), protection) in pairs {
            let _ = self.install(topo, src, dst, &protection);
        }
    }
}

/// What the segment-composed verifier learned about one case.
#[derive(Debug, Clone)]
pub struct HierReport {
    /// Classification with the usual [`Outcome`] precedence.
    pub outcome: Outcome,
    /// Some trajectory reaches the destination.
    pub can_deliver: bool,
    /// Some trajectory surfaces at a non-destination edge (rescued).
    pub can_wrong_edge: bool,
    /// Some trajectory ends in a forced drop.
    pub can_blackhole: bool,
    /// The composed state graph contains a cycle.
    pub has_cycle: bool,
    /// Composed `(segment, switch, in-port, deflected)` states explored.
    pub states: usize,
}

/// Exhaustively classifies one hierarchical route under one failure
/// set, mirroring [`crate::verify_route`] over the *composed* state
/// space: the active segment switches at every boundary crossing
/// (planned handoff or deflection spill-over) exactly as
/// [`HierController::core_ingress`] would re-stamp the packet, with the
/// deflection mark cleared by the fresh tag.
///
/// The controller is taken `&mut` so the exploration shares (and
/// extends) its deterministic `(entry, dst)` segment memo — the
/// verifier sees byte-identical segments to the dataplane.
///
/// # Errors
///
/// [`KarError::NoPath`] when no route `src → dst` exists to verify.
pub fn verify_hier_route(
    topo: &Topology,
    ctrl: &mut HierController,
    src: NodeId,
    dst: NodeId,
    technique: DeflectionTechnique,
    failed: &HashSet<LinkId>,
) -> Result<HierReport, KarError> {
    let ingress = match ctrl.ingress_segment(src, dst) {
        Some(s) => s.clone(),
        None => {
            ctrl.install(topo, src, dst, &Protection::None)?;
            ctrl.ingress_segment(src, dst)
                .expect("install populated the ingress table")
                .clone()
        }
    };
    let mut report = HierReport {
        outcome: Outcome::Delivered,
        can_deliver: false,
        can_wrong_edge: false,
        can_blackhole: false,
        has_cycle: false,
        states: 0,
    };
    // A failed uplink kills every packet at hop zero, as in the flat
    // verifier.
    let uplink = topo.node(src).ports[ingress.route.uplink as usize];
    if failed.contains(&uplink) {
        report.can_blackhole = true;
        report.outcome = Outcome::Blackhole;
        return Ok(report);
    }
    let first = topo.link(uplink).peer_of(src);
    // Key: the active segment — `None` for the ingress-stamped one,
    // `Some(entry)` after a boundary re-stamp at `entry`.
    type Key = Option<NodeId>;
    let mut routes: HashMap<Key, EncodedRoute> = HashMap::new();
    routes.insert(None, ingress.route.clone());
    let initial = (
        None as Key,
        State {
            node: first,
            in_port: topo.link(uplink).port_on(first),
            deflected: false,
        },
    );
    let mut index: HashMap<(Key, State), usize> = HashMap::new();
    let mut nodes: Vec<(Key, State)> = Vec::new();
    let mut succs: Vec<Vec<usize>> = Vec::new();
    let mut terminal_drop: Vec<bool> = Vec::new();
    let mut escapes: Vec<bool> = Vec::new();
    let mut queue = VecDeque::new();
    index.insert(initial, 0);
    nodes.push(initial);
    succs.push(Vec::new());
    terminal_drop.push(false);
    escapes.push(false);
    queue.push_back(0usize);
    while let Some(i) = queue.pop_front() {
        let (key, state) = nodes[i];
        let route = routes.get(&key).expect("active route cached").clone();
        match possible_moves(topo, &route, technique, failed, state) {
            Err(Terminal::Drop) => {
                terminal_drop[i] = true;
                report.can_blackhole = true;
            }
            Err(_) => unreachable!("possible_moves only yields Drop terminals"),
            Ok(moves) => {
                for (port, deflected) in moves {
                    match step(topo, dst, state.node, port, deflected) {
                        Err(Terminal::Delivered) => {
                            report.can_deliver = true;
                            escapes[i] = true;
                        }
                        Err(Terminal::WrongEdge(_)) => {
                            report.can_wrong_edge = true;
                            escapes[i] = true;
                        }
                        Err(Terminal::Drop) => unreachable!("step never drops"),
                        Ok(next) => {
                            let link = topo.node(state.node).ports[port as usize];
                            // Every boundary crossing re-stamps with
                            // the entry's segment, exactly like
                            // core_ingress. A re-stamp is a fresh tag,
                            // so the deflected bit clears too.
                            let (next_key, next) = if ctrl.partition.is_boundary(link) {
                                match ctrl.segment_from(topo, next.node, dst) {
                                    Ok(seg) => {
                                        routes.entry(Some(next.node)).or_insert(seg.route);
                                        (
                                            Some(next.node),
                                            State {
                                                deflected: false,
                                                ..next
                                            },
                                        )
                                    }
                                    // No plan from here: the tag stays,
                                    // exactly like core_ingress.
                                    Err(_) => (key, next),
                                }
                            } else {
                                (key, next)
                            };
                            let composed = (next_key, next);
                            let j = *index.entry(composed).or_insert_with(|| {
                                nodes.push(composed);
                                succs.push(Vec::new());
                                terminal_drop.push(false);
                                escapes.push(false);
                                queue.push_back(nodes.len() - 1);
                                nodes.len() - 1
                            });
                            if !succs[i].contains(&j) {
                                succs[i].push(j);
                            }
                        }
                    }
                }
            }
        }
    }
    report.states = nodes.len();

    let sccs = tarjan_sccs(&succs);
    let mut scc_of = vec![0usize; nodes.len()];
    for (sid, scc) in sccs.iter().enumerate() {
        for &i in scc {
            scc_of[i] = sid;
        }
    }
    let mut trapped_somewhere = false;
    for (sid, scc) in sccs.iter().enumerate() {
        let cyclic = scc.len() > 1 || (scc.len() == 1 && succs[scc[0]].contains(&scc[0]));
        if !cyclic {
            continue;
        }
        report.has_cycle = true;
        let trapped = scc.iter().all(|&i| {
            !terminal_drop[i] && !escapes[i] && succs[i].iter().all(|&j| scc_of[j] == sid)
        });
        trapped_somewhere |= trapped;
    }
    report.outcome = if trapped_somewhere {
        Outcome::Loop
    } else if report.can_blackhole {
        Outcome::Blackhole
    } else if report.has_cycle {
        Outcome::TtlExceeded
    } else if report.can_wrong_edge {
        Outcome::WrongEdge
    } else {
        Outcome::Delivered
    };
    Ok(report)
}

/// Outcome tallies of one verification sweep (one counter per
/// [`Outcome`], in enum order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Cases per outcome: `[delivered, wrong_edge, ttl, blackhole, loop]`.
    pub counts: [usize; 5],
}

impl OutcomeCounts {
    fn note(&mut self, o: Outcome) {
        self.counts[o as usize] += 1;
    }

    /// Cases classified as `o`.
    pub fn of(&self, o: Outcome) -> usize {
        self.counts[o as usize]
    }

    /// Total cases tallied.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Lossy cases (blackhole + loop) — the violation count.
    pub fn violations(&self) -> usize {
        self.of(Outcome::Blackhole) + self.of(Outcome::Loop)
    }

    /// The set of outcome classes that occurred at least once.
    pub fn classes(&self) -> Vec<Outcome> {
        [
            Outcome::Delivered,
            Outcome::WrongEdge,
            Outcome::TtlExceeded,
            Outcome::Blackhole,
            Outcome::Loop,
        ]
        .into_iter()
        .filter(|&o| self.of(o) > 0)
        .collect()
    }
}

/// Flat-vs-hierarchical verification sweep results at one failure size.
#[derive(Debug, Clone, Default)]
pub struct HierSweep {
    /// Cases examined (pairs × failure sets).
    pub cases: usize,
    /// Flat KAR tallies.
    pub flat: OutcomeCounts,
    /// Hierarchical KAR tallies.
    pub hier: OutcomeCounts,
    /// Violation classes (loop / blackhole) present in the hierarchical
    /// sweep but absent from the flat one — the acceptance gate demands
    /// this stays empty.
    pub new_violation_classes: Vec<Outcome>,
}

impl HierSweep {
    fn close(&mut self) {
        self.new_violation_classes = [Outcome::Blackhole, Outcome::Loop]
            .into_iter()
            .filter(|&o| self.hier.of(o) > 0 && self.flat.of(o) == 0)
            .collect();
    }

    /// `true` when hierarchy introduced no violation class flat KAR did
    /// not already exhibit on this topology.
    pub fn no_new_violation_classes(&self) -> bool {
        self.new_violation_classes.is_empty()
    }
}

/// Verifies hierarchical against flat encodings over every pair in
/// `pairs`: exhaustive k=1 (every single-link failure) plus
/// `k2_samples` deterministically sampled two-link failure sets per
/// pair. Both dataplanes run the same deflection technique; flat routes
/// are unprotected shortest paths (the hierarchy's ingress segments use
/// the same paths), so any classification gap is attributable to the
/// boundary re-encoding itself.
///
/// # Errors
///
/// Propagates encoding errors from either dataplane's planner.
pub fn verify_hier_resilience(
    topo: &Topology,
    partition: &Arc<Partition>,
    pairs: &[(NodeId, NodeId)],
    technique: DeflectionTechnique,
    k2_samples: usize,
) -> Result<(HierSweep, HierSweep), KarError> {
    let mut ctrl = HierController::new(Arc::clone(partition));
    let mut k1 = HierSweep::default();
    let mut k2 = HierSweep::default();
    let links = topo.link_count();
    for &(src, dst) in pairs {
        let primary =
            paths::bfs_shortest_path(topo, src, dst).ok_or(KarError::NoPath { src, dst })?;
        let flat_route = encode_with_protection(topo, primary, &Protection::None)?;
        ctrl.install(topo, src, dst, &Protection::None)?;
        let run_case = |failed: &HashSet<LinkId>,
                        sweep: &mut HierSweep,
                        ctrl: &mut HierController|
         -> Result<(), KarError> {
            let flat = crate::verify::verify_route(topo, &flat_route, src, dst, technique, failed);
            let hier = verify_hier_route(topo, ctrl, src, dst, technique, failed)?;
            sweep.cases += 1;
            sweep.flat.note(flat.outcome);
            sweep.hier.note(hier.outcome);
            Ok(())
        };
        for l in 0..links {
            let failed: HashSet<LinkId> = [LinkId(l)].into_iter().collect();
            run_case(&failed, &mut k1, &mut ctrl)?;
        }
        // Deterministic k=2 sample: stride through the C(L, 2) index
        // space so samples spread over the whole set without an RNG.
        if k2_samples > 0 && links >= 2 {
            let total = links * (links - 1) / 2;
            let take = k2_samples.min(total);
            let stride = (total / take).max(1);
            for s in 0..take {
                let mut idx = (s * stride) % total;
                // Unrank the idx-th unordered pair (a < b).
                let mut a = 0usize;
                loop {
                    let row = links - 1 - a;
                    if idx < row {
                        break;
                    }
                    idx -= row;
                    a += 1;
                }
                let b = a + 1 + idx;
                let failed: HashSet<LinkId> = [LinkId(a), LinkId(b)].into_iter().collect();
                run_case(&failed, &mut k2, &mut ctrl)?;
            }
        }
    }
    k1.close();
    k2.close();
    Ok((k1, k2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflect::KarForwarder;
    use kar_rns::IdStrategy;
    use kar_simnet::{FlowId, PacketKind, Sim, SimConfig};
    use kar_topology::{gen, LinkParams};

    fn ring(n: usize) -> Topology {
        gen::ring(n, IdStrategy::SmallestPrimes, LinkParams::default())
    }

    fn hier_sim<'t>(
        topo: &'t Topology,
        partition: Arc<Partition>,
        pairs: &[(NodeId, NodeId)],
    ) -> (Sim<'t>, Arc<HierStats>) {
        let mut ctrl = HierController::new(partition);
        for &(src, dst) in pairs {
            ctrl.install(topo, src, dst, &Protection::None).unwrap();
        }
        let stats = ctrl.stats();
        let sim = Sim::new(
            topo,
            Box::new(KarForwarder::new(DeflectionTechnique::Nip)),
            Box::new(ctrl),
            SimConfig {
                seed: 7,
                trace_paths: true,
                ..SimConfig::default()
            },
        );
        (sim, stats)
    }

    #[test]
    fn segments_split_at_boundaries_only() {
        let topo = ring(12);
        let partition = Partition::ring(&topo, 3).unwrap();
        let src = topo.expect("H0");
        let dst = topo.expect("H7");
        let path = paths::bfs_shortest_path(&topo, src, dst).unwrap();
        let segs = split_segments(&topo, &partition, &path).unwrap();
        assert!(segs.len() >= 2, "H0→H7 crosses at least one arc boundary");
        // Pieces chain: each piece starts where the previous ended.
        for w in segs.windows(2) {
            assert_eq!(w[0].last(), w[1].first());
        }
        // Concatenating pieces (deduping the shared joints) restores
        // the original path.
        let mut glued = segs[0].clone();
        for s in &segs[1..] {
            glued.extend_from_slice(&s[1..]);
        }
        assert_eq!(glued, path);
    }

    #[test]
    fn single_domain_install_matches_flat_encoding() {
        let topo = ring(8);
        let partition = Arc::new(Partition::single(&topo));
        let mut ctrl = HierController::new(Arc::clone(&partition));
        let src = topo.expect("H0");
        let dst = topo.expect("H3");
        let hier = ctrl.install(&topo, src, dst, &Protection::None).unwrap();
        assert_eq!(hier.segments.len(), 1, "one domain, one segment");
        let primary = paths::bfs_shortest_path(&topo, src, dst).unwrap();
        let flat = encode_with_protection(&topo, primary, &Protection::None).unwrap();
        assert_eq!(hier.segments[0].route, flat);
        assert_eq!(hier.max_bits(), flat.bit_length());
        assert_eq!(hier.reencodes(), 0);
    }

    #[test]
    fn segment_bits_are_bounded_by_the_domain_not_the_path() {
        // A 48-ring: flat route IDs across half the ring are huge;
        // 8 domains of 6 switches keep every segment small.
        let topo = ring(48);
        let partition = Arc::new(Partition::ring(&topo, 8).unwrap());
        let mut ctrl = HierController::new(Arc::clone(&partition));
        let src = topo.expect("H0");
        let dst = topo.expect("H23");
        let hier = ctrl.install(&topo, src, dst, &Protection::None).unwrap();
        let primary = paths::bfs_shortest_path(&topo, src, dst).unwrap();
        let flat = encode_with_protection(&topo, primary.clone(), &Protection::None).unwrap();
        assert!(hier.segments.len() >= 3);
        assert!(
            hier.max_bits() * 2 < flat.bit_length(),
            "hier {} bits vs flat {} bits",
            hier.max_bits(),
            flat.bit_length()
        );
        assert_eq!(hier.nominal_hops(), primary.len() - 1, "no stretch");
    }

    #[test]
    fn packets_deliver_across_boundaries() {
        let topo = ring(12);
        let partition = Arc::new(Partition::ring(&topo, 4).unwrap());
        let src = topo.expect("H0");
        let dst = topo.expect("H6");
        let (mut sim, stats) = hier_sim(&topo, partition, &[(src, dst)]);
        for i in 0..20 {
            sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
        }
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 20, "{:?}", sim.stats());
        assert!(
            stats.boundary_stamps.load(Ordering::Relaxed)
                + stats.boundary_recomputes.load(Ordering::Relaxed)
                >= 20,
            "every probe crossed at least one boundary: {stats:?}"
        );
        // Shortest-path hops: H0→C0→…→C6→H6 = 8.
        assert_eq!(sim.stats().max_hops, 7);
    }

    #[test]
    fn hier_delivers_across_a_failure_with_deflection() {
        let topo = ring(12);
        let partition = Arc::new(Partition::ring(&topo, 4).unwrap());
        let src = topo.expect("H0");
        let dst = topo.expect("H6");
        let mut ctrl = HierController::new(partition);
        ctrl.install(&topo, src, dst, &Protection::None).unwrap();
        let mut sim = Sim::new(
            &topo,
            Box::new(KarForwarder::new(DeflectionTechnique::Nip)),
            Box::new(ctrl),
            SimConfig {
                seed: 11,
                default_ttl: 255,
                ..SimConfig::default()
            },
        );
        sim.schedule_link_down(SimTime::ZERO, topo.expect_link("C2", "C3"));
        for i in 0..30 {
            sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
        }
        sim.run_to_quiescence();
        let s = sim.stats();
        assert!(
            s.delivered >= 27,
            "deflection + boundary re-encode rescue probes: {s:?}"
        );
    }

    #[test]
    fn failure_aware_replan_routes_around_the_cut() {
        let topo = ring(12);
        let partition = Arc::new(Partition::ring(&topo, 4).unwrap());
        let src = topo.expect("H0");
        let dst = topo.expect("H6");
        let mut ctrl = HierController::new(partition);
        ctrl.set_failure_aware(true);
        ctrl.install(&topo, src, dst, &Protection::None).unwrap();
        // Failure lands on the nominal path; the replanned ingress
        // segment must avoid it.
        let cut = topo.expect_link("C2", "C3");
        ctrl.on_link_event(&topo, cut, false, SimTime::ZERO);
        let route = ctrl.ingress_route(src, dst).expect("replanned").clone();
        let mut pkt = Packet {
            id: 0,
            flow: FlowId(0),
            seq: 0,
            kind: PacketKind::Probe,
            size_bytes: 100,
            src,
            dst,
            route: None,
            ttl: 64,
            hops: 0,
            deflections: 0,
            created: SimTime::ZERO,
        };
        assert_eq!(ctrl.ingress(&topo, src, &mut pkt), Some(route.uplink));
        // C0's residue now points the other way around the ring (C11),
        // not into the cut side.
        let c0 = topo.expect("C0");
        let port = route.port_at(topo.switch_id(c0).unwrap());
        let toward = topo
            .neighbors(c0)
            .find(|&(p, _, _)| p == port)
            .map(|(_, _, peer)| peer)
            .unwrap();
        assert_eq!(toward, topo.expect("C11"));
    }

    #[test]
    fn verify_single_domain_equals_flat_verifier() {
        let topo = ring(10);
        let partition = Arc::new(Partition::single(&topo));
        let src = topo.expect("H1");
        let dst = topo.expect("H5");
        let primary = paths::bfs_shortest_path(&topo, src, dst).unwrap();
        let flat = encode_with_protection(&topo, primary, &Protection::None).unwrap();
        let mut ctrl = HierController::new(partition);
        for l in 0..topo.link_count() {
            let failed: HashSet<LinkId> = [LinkId(l)].into_iter().collect();
            for technique in [
                DeflectionTechnique::None,
                DeflectionTechnique::Avp,
                DeflectionTechnique::Nip,
            ] {
                let f = crate::verify::verify_route(&topo, &flat, src, dst, technique, &failed);
                let h = verify_hier_route(&topo, &mut ctrl, src, dst, technique, &failed).unwrap();
                assert_eq!(
                    f.outcome, h.outcome,
                    "link {l} technique {technique:?}: flat {:?} vs hier {:?}",
                    f.outcome, h.outcome
                );
            }
        }
    }

    #[test]
    fn hier_resilience_introduces_no_new_violation_classes() {
        for (topo, parts) in [(ring(12), 4), (ring(16), 2)] {
            let partition = Arc::new(Partition::ring(&topo, parts).unwrap());
            let hosts = topo.edge_nodes();
            let pairs: Vec<(NodeId, NodeId)> = (0..hosts.len())
                .map(|i| (hosts[i], hosts[(i + hosts.len() / 2) % hosts.len()]))
                .take(4)
                .collect();
            let (k1, k2) =
                verify_hier_resilience(&topo, &partition, &pairs, DeflectionTechnique::Nip, 8)
                    .unwrap();
            assert!(k1.cases > 0 && k2.cases > 0);
            assert!(
                k1.no_new_violation_classes(),
                "k=1 new classes: {:?} (flat {:?} hier {:?})",
                k1.new_violation_classes,
                k1.flat,
                k1.hier
            );
            assert!(
                k2.no_new_violation_classes(),
                "k=2 new classes: {:?}",
                k2.new_violation_classes
            );
        }
    }

    #[test]
    fn wrong_edge_rescue_recomputes_hierarchically() {
        let topo = ring(12);
        let partition = Arc::new(Partition::ring(&topo, 4).unwrap());
        let mut ctrl = HierController::new(partition);
        let src = topo.expect("H0");
        let dst = topo.expect("H6");
        let wrong = topo.expect("H3");
        ctrl.install(&topo, src, dst, &Protection::None).unwrap();
        let mut pkt = Packet {
            id: 0,
            flow: FlowId(0),
            seq: 0,
            kind: PacketKind::Probe,
            size_bytes: 100,
            src,
            dst,
            route: None,
            ttl: 64,
            hops: 0,
            deflections: 1,
            created: SimTime::ZERO,
        };
        match ctrl.reroute(&topo, wrong, &mut pkt) {
            RerouteDecision::Forward { delay, .. } => {
                assert_eq!(delay, SimTime::from_millis(2));
            }
            other => panic!("expected forward, got {other:?}"),
        }
        assert!(pkt.route.is_some(), "rescue stamped a fresh segment");
        assert_eq!(ctrl.stats().wrong_edge_reencodes.load(Ordering::Relaxed), 1);
    }
}
