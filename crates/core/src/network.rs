//! One-stop assembly of a KAR network simulation.
//!
//! [`KarNetworkBuilder`] collects every knob of a run — seed, TTL,
//! detection delay, reroute policy, recovery loop, observability — and
//! a single [`KarNetworkBuilder::build`] produces a [`KarNetwork`],
//! which wires a topology, the KAR dataplane (modulo forwarding plus
//! deflection), and the controller-backed edge logic into a ready
//! [`Sim`]. This is the API the examples and every experiment driver
//! use; routes go in through [`KarNetwork::encode`] (one
//! [`EncodeRequest`] per route).

use crate::cache::EncodingCache;
use crate::controller::{Controller, EncodeOutcome, EncodeRequest, ReroutePolicy};
use crate::deflect::{DeflectionTechnique, KarForwarder};
use crate::error::KarError;
use crate::hier::{HierController, HierStats};
use crate::protection::Protection;
use crate::recovery::{RecoveringController, RecoveryConfig, RecoveryLog};
use crate::route::EncodedRoute;
use kar_obs::{Entity, ObsHandle, Profiler};
use kar_simnet::{Behavior, EdgeLogic, Sim, SimConfig};
use kar_topology::{paths, NodeId, Partition, Topology};
use std::sync::{Arc, Mutex};

/// Collects every configuration knob of a KAR simulation; one
/// [`KarNetworkBuilder::build`] call turns it into a [`KarNetwork`].
///
/// # Examples
///
/// ```
/// use kar::prelude::*;
/// use kar_topology::topo15;
///
/// let topo = topo15::build();
/// let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
///     .seed(7)
///     .ttl(255)
///     .build();
/// let as1 = topo.expect("AS1");
/// let as3 = topo.expect("AS3");
/// net.encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))?;
/// let mut sim = net.into_sim();
/// sim.run_until(SimTime::from_millis(1));
/// # Ok::<(), kar::KarError>(())
/// ```
#[derive(Clone)]
pub struct KarNetworkBuilder<'t> {
    topo: &'t Topology,
    technique: DeflectionTechnique,
    sim_config: SimConfig,
    reroute: ReroutePolicy,
    cache: Option<Arc<EncodingCache>>,
    recovery: Option<RecoveryConfig>,
    hierarchy: Option<Arc<Partition>>,
    byzantine: Vec<(NodeId, Behavior)>,
    obs: ObsHandle,
    profiler: Option<Arc<Profiler>>,
}

impl<'t> KarNetworkBuilder<'t> {
    /// Starts a builder with default controller/simulation settings.
    pub fn new(topo: &'t Topology, technique: DeflectionTechnique) -> Self {
        KarNetworkBuilder {
            topo,
            technique,
            sim_config: SimConfig::default(),
            reroute: ReroutePolicy::default(),
            cache: None,
            recovery: None,
            hierarchy: None,
            byzantine: Vec::new(),
            obs: ObsHandle::disabled(),
            profiler: None,
        }
    }

    /// RNG seed (runs with equal seeds are bit-identical).
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim_config.seed = seed;
        self
    }

    /// Per-packet hop budget.
    pub fn ttl(mut self, ttl: u16) -> Self {
        self.sim_config.default_ttl = ttl;
        self
    }

    /// Serializes every core-switch traversal through one shared CPU
    /// taking `service` per packet (see
    /// [`kar_simnet::SimConfig::switch_service`]).
    pub fn switch_service(mut self, service: kar_simnet::SimTime) -> Self {
        self.sim_config.switch_service = Some(service);
        self
    }

    /// Enables per-packet path tracing (see [`kar_simnet::TraceLog`]).
    pub fn tracing(mut self) -> Self {
        self.sim_config.trace_paths = true;
        self
    }

    /// Failure-detection delay: how long switches keep forwarding into a
    /// dead port before noticing (the paper assumes zero).
    pub fn detection_delay(mut self, delay: kar_simnet::SimTime) -> Self {
        self.sim_config.detection_delay = delay;
        self
    }

    /// Toggles the precomputed-reducer forwarding fast path (see
    /// [`kar_simnet::SimConfig::fast_path`]; on by default, bit-identical
    /// either way).
    pub fn fast_path(mut self, enabled: bool) -> Self {
        self.sim_config.fast_path = enabled;
        self
    }

    /// Wrong-edge policy (default: controller recompute with a 2 ms
    /// round trip, the paper's setting).
    pub fn reroute(mut self, policy: ReroutePolicy) -> Self {
        self.reroute = policy;
        self
    }

    /// Enables the failure-reactive controller loop (see
    /// [`crate::recovery`]). Read latencies afterwards via
    /// [`KarNetwork::recovery_log`].
    pub fn recovery(mut self, config: RecoveryConfig) -> Self {
        self.recovery = Some(config);
        self
    }

    /// Routes hierarchically over `partition` (see [`crate::hier`]):
    /// route IDs are encoded per domain and re-stamped at boundary
    /// crossings, bounding header bits by the largest domain instead of
    /// the path length. Encode-time protection applies to the ingress
    /// segment only; boundary re-encodes are unprotected (the paper's
    /// reactive-recompute posture). Mutually exclusive with
    /// [`KarNetworkBuilder::recovery`] — both want to own the edge
    /// logic.
    pub fn hierarchy(mut self, partition: Arc<Partition>) -> Self {
        self.hierarchy = Some(partition);
        self
    }

    /// Declares `node` a Byzantine switch with the given [`Behavior`]
    /// (accumulates across calls; the last behavior set for a node
    /// wins). Honest-only configurations never call this, keeping them
    /// byte-identical to the pre-adversary engine.
    pub fn byzantine(mut self, node: NodeId, behavior: Behavior) -> Self {
        self.byzantine.push((node, behavior));
        self
    }

    /// Attaches an observability bundle (see [`kar_obs`]). Pure
    /// observation — a run with observability attached is byte-identical
    /// to one without. Set it before installing routes so install-time
    /// gauges are captured too.
    pub fn obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches a profiler timing the engine's dispatch loop per event
    /// type (host wall clock — telemetry only).
    pub fn profiler(mut self, profiler: Arc<Profiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Routes all route-ID computation through a shared
    /// [`EncodingCache`]. Cached encodes are byte-identical to fresh
    /// ones — sharing a cache changes speed, never results.
    pub fn encoding_cache(mut self, cache: Arc<EncodingCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Finalizes the configuration into a [`KarNetwork`] ready for route
    /// installs and [`KarNetwork::into_sim`].
    pub fn build(self) -> KarNetwork<'t> {
        assert!(
            self.hierarchy.is_none() || self.recovery.is_none(),
            "hierarchy and recovery are mutually exclusive: both own the edge logic"
        );
        let mut controller = Controller::new().with_reroute(self.reroute);
        if let Some(cache) = &self.cache {
            controller = controller.with_encoding_cache(Arc::clone(cache));
        }
        let hier = self.hierarchy.map(|partition| {
            let mut h = HierController::new(partition).with_reroute(self.reroute);
            if let Some(cache) = &self.cache {
                h = h.with_encoding_cache(Arc::clone(cache));
            }
            h
        });
        let recovery = self
            .recovery
            .map(|config| (config, Arc::new(Mutex::new(RecoveryLog::default()))));
        KarNetwork {
            topo: self.topo,
            technique: self.technique,
            controller,
            hier,
            sim_config: self.sim_config,
            reroute: self.reroute,
            cache: self.cache,
            recovery,
            byzantine: self.byzantine,
            installed: Vec::new(),
            obs: self.obs,
            profiler: self.profiler,
        }
    }
}

/// A configured KAR deployment: routes can be installed on it and
/// [`KarNetwork::into_sim`] wires it into a runnable simulation.
///
/// Construct one via [`KarNetwork::builder`] (or [`KarNetwork::new`]
/// for all-default settings).
pub struct KarNetwork<'t> {
    topo: &'t Topology,
    technique: DeflectionTechnique,
    controller: Controller,
    hier: Option<HierController>,
    sim_config: SimConfig,
    // Mirrors of builder knobs that must be replayed onto a
    // RecoveringController (building it happens in `into_sim`, after the
    // plain controller consumed the originals).
    reroute: ReroutePolicy,
    cache: Option<Arc<EncodingCache>>,
    recovery: Option<(RecoveryConfig, Arc<Mutex<RecoveryLog>>)>,
    byzantine: Vec<(NodeId, Behavior)>,
    installed: Vec<(Vec<NodeId>, Protection)>,
    obs: ObsHandle,
    profiler: Option<Arc<Profiler>>,
}

impl<'t> KarNetwork<'t> {
    /// Starts a [`KarNetworkBuilder`] — the one-stop configuration
    /// surface for every knob of a run.
    pub fn builder(topo: &'t Topology, technique: DeflectionTechnique) -> KarNetworkBuilder<'t> {
        KarNetworkBuilder::new(topo, technique)
    }

    /// Creates a network with the given deflection technique and default
    /// controller/simulation settings (equivalent to building the
    /// default [`KarNetworkBuilder`]).
    pub fn new(topo: &'t Topology, technique: DeflectionTechnique) -> Self {
        KarNetworkBuilder::new(topo, technique).build()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// Handle onto the recovery-latency log, when the failure-reactive
    /// controller loop is enabled (see [`KarNetworkBuilder::recovery`]).
    pub fn recovery_log(&self) -> Option<Arc<Mutex<RecoveryLog>>> {
        self.recovery.as_ref().map(|(_, log)| Arc::clone(log))
    }

    /// Mutable access to the controller (failure awareness, inspection).
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// Mutable access to the hierarchical controller, when
    /// [`KarNetworkBuilder::hierarchy`] was set (failure awareness,
    /// segment inspection).
    pub fn hier_controller_mut(&mut self) -> Option<&mut HierController> {
        self.hier.as_mut()
    }

    /// Handle onto the hierarchical controller's counters, when
    /// hierarchy is enabled (survives [`KarNetwork::into_sim`]).
    pub fn hier_stats(&self) -> Option<Arc<HierStats>> {
        self.hier.as_ref().map(|h| h.stats())
    }

    /// Serves one [`EncodeRequest`]: installs a shortest-path route
    /// with the requested protection and returns it together with its
    /// canonical wire header. The single public encode entry point —
    /// the service daemon, the campaign engine and the examples all
    /// call this.
    ///
    /// # Errors
    ///
    /// See [`Controller::install_route`].
    pub fn encode(&mut self, req: &EncodeRequest) -> Result<EncodeOutcome, KarError> {
        let route = self.install_shortest(req.src, req.dst, &req.protection)?;
        EncodeOutcome::of(route)
    }

    /// Installs a shortest-path route with the given protection.
    #[deprecated(since = "0.3.0", note = "use KarNetwork::encode(&EncodeRequest)")]
    pub fn install_route(
        &mut self,
        src: NodeId,
        dst: NodeId,
        protection: &Protection,
    ) -> Result<EncodedRoute, KarError> {
        self.install_shortest(src, dst, protection)
    }

    fn install_shortest(
        &mut self,
        src: NodeId,
        dst: NodeId,
        protection: &Protection,
    ) -> Result<EncodedRoute, KarError> {
        if let Some(hier) = &mut self.hier {
            // Hierarchical install: the returned route is the *ingress
            // segment* (what the edge actually stamps); downstream
            // segments live in the controller's boundary memo.
            let route = hier.install(self.topo, src, dst, protection)?;
            if self.obs.is_enabled() {
                if let Some(primary) = paths::bfs_shortest_path(self.topo, src, dst) {
                    self.note_install(&primary);
                }
            }
            return Ok(route.segments[0].route.clone());
        }
        if self.recovery.is_some() {
            // Record the concrete primary so the recovery controller can
            // match failures against it (same path selection as the
            // plain install: shortest path on the intact topology).
            let primary = paths::bfs_shortest_path(self.topo, src, dst)
                .ok_or(KarError::NoPath { src, dst })?;
            return self.install_explicit(primary, protection);
        }
        let route = self
            .controller
            .install_route(self.topo, src, dst, protection)?;
        if self.obs.is_enabled() {
            // Same path selection the controller just made; recomputed
            // here purely for the gauge.
            if let Some(primary) = paths::bfs_shortest_path(self.topo, src, dst) {
                self.note_install(&primary);
            }
        }
        Ok(route)
    }

    /// Publishes the nominal (failure-free) hop count of an installed
    /// primary under its `(src, dst)` pair so dumps can compute stretch.
    fn note_install(&self, primary: &[NodeId]) {
        if let (Some(obs), Some((&src, &dst))) =
            (self.obs.get(), primary.first().zip(primary.last()))
        {
            obs.metrics
                .gauge(Entity::Pair(src.0 as u32, dst.0 as u32), "nominal_hops")
                .set(primary.len() as i64 - 1);
        }
    }

    /// Installs an explicit (pinned) primary path with protection.
    ///
    /// Not supported under [`KarNetworkBuilder::hierarchy`] (segment
    /// planning owns path selection there); hierarchical deployments
    /// install via [`KarNetwork::encode`].
    ///
    /// # Errors
    ///
    /// See [`Controller::install_explicit`].
    pub fn install_explicit(
        &mut self,
        primary: Vec<NodeId>,
        protection: &Protection,
    ) -> Result<EncodedRoute, KarError> {
        let route = self
            .controller
            .install_explicit(self.topo, primary.clone(), protection)?;
        self.note_install(&primary);
        if self.recovery.is_some() {
            self.installed.push((primary, protection.clone()));
        }
        Ok(route)
    }

    /// Finalizes into a runnable simulation.
    pub fn into_sim(self) -> Sim<'t> {
        if let Some(hier) = self.hier {
            let mut sim = Sim::new(
                self.topo,
                Box::new(KarForwarder::new(self.technique)),
                Box::new(hier),
                self.sim_config,
            );
            sim.attach_obs(&self.obs);
            if let Some(profiler) = self.profiler {
                sim.attach_profiler(profiler);
            }
            for (node, behavior) in self.byzantine {
                sim.set_behavior(node, behavior);
            }
            return sim;
        }
        let edge: Box<dyn EdgeLogic> = match self.recovery {
            Some((config, log)) => {
                let mut rc = RecoveringController::new(config)
                    .with_reroute(self.reroute)
                    .with_log(log)
                    .with_obs(self.obs.clone());
                if let Some(cache) = self.cache {
                    rc = rc.with_encoding_cache(cache);
                }
                for (primary, protection) in self.installed {
                    rc.install_explicit(self.topo, primary, &protection)
                        .expect("route encoded once already");
                }
                Box::new(rc)
            }
            None => Box::new(self.controller),
        };
        let mut sim = Sim::new(
            self.topo,
            Box::new(KarForwarder::new(self.technique)),
            edge,
            self.sim_config,
        );
        sim.attach_obs(&self.obs);
        if let Some(profiler) = self.profiler {
            sim.attach_profiler(profiler);
        }
        for (node, behavior) in self.byzantine {
            sim.set_behavior(node, behavior);
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_simnet::{FlowId, PacketKind, SimTime};
    use kar_topology::topo15;

    #[test]
    fn probe_crosses_topo15_primary_route() {
        let topo = topo15::build();
        let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
            .seed(3)
            .build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        net.encode(&EncodeRequest::new(as1, as3)).unwrap();
        let mut sim = net.into_sim();
        sim.inject(as1, as3, FlowId(0), 0, PacketKind::Probe, 1000);
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(sim.stats().delivered, 1);
        assert_eq!(sim.stats().max_hops, 4); // SW10, SW7, SW13, SW29
        assert_eq!(sim.stats().deflections, 0);
    }

    #[test]
    fn deflection_rescues_probes_across_failure() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let failed = topo.expect_link("SW7", "SW13");

        // Without deflection: all probes die at SW7.
        let mut net = KarNetwork::builder(&topo, DeflectionTechnique::None)
            .seed(3)
            .build();
        net.encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))
            .unwrap();
        let mut sim = net.into_sim();
        sim.schedule_link_down(SimTime::ZERO, failed);
        for i in 0..50 {
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 1000);
        }
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 0);

        // With NIP + full protection: every probe survives.
        let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
            .seed(3)
            .build();
        net.encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))
            .unwrap();
        let mut sim = net.into_sim();
        sim.schedule_link_down(SimTime::ZERO, failed);
        for i in 0..50 {
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 1000);
        }
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 50, "{:?}", sim.stats());
        assert!(sim.stats().deflections >= 50);
    }

    #[test]
    fn hitless_property_no_packet_loss_with_protection() {
        // The paper's liveness claim: with driven deflections, in-flight
        // packets reach the destination despite the failure — no loss.
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        for (a, b) in topo15::FAILURE_LOCATIONS {
            let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
                .seed(11)
                .build();
            net.encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))
                .unwrap();
            let mut sim = net.into_sim();
            sim.schedule_link_down(SimTime::ZERO, topo.expect_link(a, b));
            for i in 0..100 {
                sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
            }
            sim.run_to_quiescence();
            assert_eq!(
                sim.stats().delivered,
                100,
                "failure {a}-{b}: {:?}",
                sim.stats()
            );
        }
    }

    #[test]
    fn unprotected_nip_still_delivers_by_wandering() {
        // Without protection, NIP random walks; packets may surface at
        // AS2 (wrong edge) and get re-encoded by the controller. With a
        // generous TTL everything eventually arrives.
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
            .seed(5)
            .ttl(255)
            .build();
        net.encode(&EncodeRequest::new(as1, as3)).unwrap();
        let mut sim = net.into_sim();
        sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW7", "SW13"));
        for i in 0..50 {
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
        }
        sim.run_to_quiescence();
        let s = sim.stats();
        assert!(
            s.delivered >= 45,
            "most random-walking probes should arrive: {s:?}"
        );
        assert!(
            s.mean_hops().unwrap() > 4.0,
            "wandering costs hops: {:?}",
            s.mean_hops()
        );
    }

    #[test]
    fn recovery_reencodes_the_flow_after_the_notification_lands() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let failed = topo.expect_link("SW7", "SW13");
        let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
            .seed(7)
            .detection_delay(SimTime::from_micros(100))
            .recovery(crate::recovery::RecoveryConfig {
                notification_delay: SimTime::from_millis(1),
                protection: Protection::None,
            })
            .build();
        let log = net.recovery_log().unwrap();
        net.encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))
            .unwrap();
        let mut sim = net.into_sim();
        // Failure at 1 ms; observed at 1.1 ms; recovery live at 2.1 ms.
        sim.schedule_link_down(SimTime::from_millis(1), failed);
        for i in 0..20 {
            sim.run_until(SimTime::from_micros(i * 500));
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
        }
        sim.run_to_quiescence();
        let s = sim.stats();
        // Packets already racing toward SW7 inside the 100 µs detection
        // window die in the dead link; everything else arrives — either
        // by deflection (observed-down window) or on the recovered route.
        assert!(s.delivered >= 18, "{s:?}");
        assert_eq!(s.delivered + s.dropped(), 20, "{s:?}");
        assert!(
            s.deflected_delivered > 0,
            "packets in the recovery window survive by deflection: {s:?}"
        );
        let log = log.lock().unwrap();
        assert_eq!(log.notices.len(), 1);
        assert_eq!(log.flows.len(), 1, "{log:?}");
        assert!(
            log.flows[0].latency() >= SimTime::from_millis(1),
            "latency includes the notification delay: {}",
            log.flows[0].latency()
        );
    }

    #[test]
    fn observability_records_installs_and_recovery_without_changing_results() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let failed = topo.expect_link("SW7", "SW13");
        let run = |obs: ObsHandle| {
            let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
                .seed(7)
                .detection_delay(SimTime::from_micros(100))
                .obs(obs)
                .recovery(crate::recovery::RecoveryConfig {
                    notification_delay: SimTime::from_millis(1),
                    protection: Protection::None,
                })
                .build();
            net.encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))
                .unwrap();
            let mut sim = net.into_sim();
            sim.schedule_link_down(SimTime::from_millis(1), failed);
            for i in 0..20 {
                sim.run_until(SimTime::from_micros(i * 500));
                sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
            }
            sim.run_to_quiescence();
            sim.stats().clone()
        };
        let plain = run(kar_obs::ObsHandle::disabled());
        let handle = kar_obs::ObsHandle::enabled();
        let instrumented = run(handle.clone());
        assert_eq!(plain, instrumented, "observation must not perturb the run");

        let obs = handle.get().unwrap();
        // Route install published the nominal hop count of the primary
        // (AS1 → SW10 → SW7 → SW13 → SW29 → AS3: 5 link hops).
        let nominal = obs
            .metrics
            .gauge(Entity::Pair(as1.0 as u32, as3.0 as u32), "nominal_hops")
            .get();
        assert_eq!(nominal, 5);
        // The recovery loop saw one failure notice and re-encoded once.
        assert_eq!(
            obs.metrics
                .counter(Entity::Global, "recovery.notices")
                .get(),
            1
        );
        assert_eq!(
            obs.metrics
                .counter(Entity::Global, "recovery.reencodes")
                .get(),
            1
        );
        let notif = obs
            .metrics
            .histogram(Entity::Global, "recovery.notification_ns");
        assert_eq!(notif.count(), 1);
        assert_eq!(notif.min(), Some(SimTime::from_millis(1).as_nanos()));
        let latency = obs.metrics.histogram(Entity::Global, "recovery.latency_ns");
        assert_eq!(latency.count(), 1);
        assert!(latency.min().unwrap() >= SimTime::from_millis(1).as_nanos());
        let reencodes: Vec<_> = obs
            .events
            .events()
            .into_iter()
            .filter(|e| e.kind == kar_obs::EventKind::Reencode)
            .collect();
        assert_eq!(reencodes.len(), 1, "one detour, never restored");
        assert_eq!(reencodes[0].tag, "detour");
        assert_eq!(reencodes[0].node, Some(as1.0 as u32));
    }

    #[test]
    fn hierarchy_through_the_builder_delivers_and_counts_boundaries() {
        use kar_rns::IdStrategy;
        use kar_topology::{gen, LinkParams};
        let topo = gen::ring(12, IdStrategy::SmallestPrimes, LinkParams::default());
        let partition = Arc::new(Partition::ring(&topo, 4).unwrap());
        let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
            .seed(5)
            .hierarchy(Arc::clone(&partition))
            .build();
        let src = topo.expect("H0");
        let dst = topo.expect("H6");
        let out = net.encode(&EncodeRequest::new(src, dst)).unwrap();
        // The advertised route is the ingress segment: strictly smaller
        // than the flat encoding over the same half-ring path.
        let primary = paths::bfs_shortest_path(&topo, src, dst).unwrap();
        let flat =
            crate::protection::encode_with_protection(&topo, primary, &Protection::None).unwrap();
        assert!(out.route.bit_length() < flat.bit_length());
        let stats = net.hier_stats().unwrap();
        let mut sim = net.into_sim();
        for i in 0..10 {
            sim.inject(src, dst, FlowId(0), i, PacketKind::Probe, 500);
        }
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 10, "{:?}", sim.stats());
        assert!(
            stats
                .boundary_stamps
                .load(std::sync::atomic::Ordering::Relaxed)
                + stats
                    .boundary_recomputes
                    .load(std::sync::atomic::Ordering::Relaxed)
                >= 10
        );
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn hierarchy_and_recovery_refuse_to_combine() {
        use kar_rns::IdStrategy;
        use kar_topology::{gen, LinkParams};
        let topo = gen::ring(8, IdStrategy::SmallestPrimes, LinkParams::default());
        let partition = Arc::new(Partition::ring(&topo, 2).unwrap());
        let _ = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
            .hierarchy(partition)
            .recovery(crate::recovery::RecoveryConfig {
                notification_delay: SimTime::from_millis(1),
                protection: Protection::None,
            })
            .build();
    }

    #[test]
    fn builder_knobs() {
        let topo = topo15::build();
        let net = KarNetwork::builder(&topo, DeflectionTechnique::Avp)
            .seed(9)
            .ttl(32)
            .fast_path(false)
            .reroute(ReroutePolicy::Drop)
            .build();
        assert_eq!(net.topology().node_count(), 15);
        assert!(net.recovery_log().is_none());
        let sim = net.into_sim();
        assert_eq!(sim.forwarder().name(), "AVP");
    }

    /// `encode` returns the header whose bytes the ingress path stamps
    /// onto packets — the sim side of the sim/service byte-identity
    /// contract.
    #[test]
    fn encode_outcome_header_matches_installed_route() {
        let topo = topo15::build();
        let mut net = KarNetwork::new(&topo, DeflectionTechnique::Nip);
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let out = net
            .encode(&EncodeRequest::new(as1, as3).with_protection(Protection::AutoFull))
            .unwrap();
        assert_eq!(out.header.unpack(), out.route.route_id);
        assert_eq!(
            net.controller_mut().route(as1, as3),
            Some(&out.route),
            "encode installs at the ingress edge"
        );
    }
}
