//! One-stop assembly of a KAR network simulation.
//!
//! [`KarNetwork`] wires a topology, the KAR dataplane (modulo
//! forwarding plus deflection), and the controller-backed edge logic
//! into a ready [`Sim`]. This is the API the examples and every
//! experiment driver use.

use crate::cache::EncodingCache;
use crate::controller::{Controller, ReroutePolicy};
use crate::deflect::{DeflectionTechnique, KarForwarder};
use crate::error::KarError;
use crate::protection::Protection;
use crate::route::EncodedRoute;
use kar_simnet::{Sim, SimConfig};
use kar_topology::{NodeId, Topology};
use std::sync::Arc;

/// Builder for a KAR simulation.
///
/// # Examples
///
/// ```
/// use kar::{DeflectionTechnique, KarNetwork, Protection};
/// use kar_simnet::SimTime;
/// use kar_topology::topo15;
///
/// let topo = topo15::build();
/// let mut net = KarNetwork::new(&topo, DeflectionTechnique::Nip);
/// let as1 = topo.expect("AS1");
/// let as3 = topo.expect("AS3");
/// net.install_route(as1, as3, &Protection::AutoFull)?;
/// net.install_route(as3, as1, &Protection::None)?;
/// let mut sim = net.into_sim();
/// sim.run_until(SimTime::from_millis(1));
/// # Ok::<(), kar::KarError>(())
/// ```
pub struct KarNetwork<'t> {
    topo: &'t Topology,
    technique: DeflectionTechnique,
    controller: Controller,
    sim_config: SimConfig,
}

impl<'t> KarNetwork<'t> {
    /// Creates a network with the given deflection technique and default
    /// controller/simulation settings.
    pub fn new(topo: &'t Topology, technique: DeflectionTechnique) -> Self {
        KarNetwork {
            topo,
            technique,
            controller: Controller::new(),
            sim_config: SimConfig::default(),
        }
    }

    /// Sets the RNG seed (runs with equal seeds are bit-identical).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim_config.seed = seed;
        self
    }

    /// Sets the per-packet hop budget.
    pub fn with_ttl(mut self, ttl: u16) -> Self {
        self.sim_config.default_ttl = ttl;
        self
    }

    /// Serializes every core-switch traversal through one shared CPU
    /// taking `service` per packet — the Mininet-style shared softswitch
    /// model (see [`kar_simnet::SimConfig::switch_service`]).
    pub fn with_switch_service(mut self, service: kar_simnet::SimTime) -> Self {
        self.sim_config.switch_service = Some(service);
        self
    }

    /// Enables per-packet path tracing (see [`kar_simnet::TraceLog`]).
    pub fn with_tracing(mut self) -> Self {
        self.sim_config.trace_paths = true;
        self
    }

    /// Sets the failure-detection delay: how long switches keep
    /// forwarding into a dead port before noticing (the paper assumes
    /// zero — instantaneous local detection).
    pub fn with_detection_delay(mut self, delay: kar_simnet::SimTime) -> Self {
        self.sim_config.detection_delay = delay;
        self
    }

    /// Sets the wrong-edge policy (default: controller recompute with a
    /// 2 ms round trip, the paper's setting).
    pub fn with_reroute(mut self, policy: ReroutePolicy) -> Self {
        self.controller = std::mem::take(&mut self.controller).with_reroute(policy);
        self
    }

    /// Attaches a shared route-encoding cache to the controller. Cached
    /// encodes are byte-identical to fresh ones — sharing one cache
    /// across simulations (or threads) changes speed, never results.
    pub fn with_encoding_cache(mut self, cache: Arc<EncodingCache>) -> Self {
        self.controller = std::mem::take(&mut self.controller).with_encoding_cache(cache);
        self
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// Mutable access to the controller (failure awareness, inspection).
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// Installs a shortest-path route with the given protection.
    ///
    /// # Errors
    ///
    /// See [`Controller::install_route`].
    pub fn install_route(
        &mut self,
        src: NodeId,
        dst: NodeId,
        protection: &Protection,
    ) -> Result<EncodedRoute, KarError> {
        self.controller
            .install_route(self.topo, src, dst, protection)
    }

    /// Installs an explicit (pinned) primary path with protection.
    ///
    /// # Errors
    ///
    /// See [`Controller::install_explicit`].
    pub fn install_explicit(
        &mut self,
        primary: Vec<NodeId>,
        protection: &Protection,
    ) -> Result<EncodedRoute, KarError> {
        self.controller
            .install_explicit(self.topo, primary, protection)
    }

    /// Finalizes into a runnable simulation.
    pub fn into_sim(self) -> Sim<'t> {
        Sim::new(
            self.topo,
            Box::new(KarForwarder::new(self.technique)),
            Box::new(self.controller),
            self.sim_config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_simnet::{FlowId, PacketKind, SimTime};
    use kar_topology::topo15;

    #[test]
    fn probe_crosses_topo15_primary_route() {
        let topo = topo15::build();
        let mut net = KarNetwork::new(&topo, DeflectionTechnique::Nip).with_seed(3);
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        net.install_route(as1, as3, &Protection::None).unwrap();
        let mut sim = net.into_sim();
        sim.inject(as1, as3, FlowId(0), 0, PacketKind::Probe, 1000);
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(sim.stats().delivered, 1);
        assert_eq!(sim.stats().max_hops, 4); // SW10, SW7, SW13, SW29
        assert_eq!(sim.stats().deflections, 0);
    }

    #[test]
    fn deflection_rescues_probes_across_failure() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let failed = topo.expect_link("SW7", "SW13");

        // Without deflection: all probes die at SW7.
        let mut net = KarNetwork::new(&topo, DeflectionTechnique::None).with_seed(3);
        net.install_route(as1, as3, &Protection::AutoFull).unwrap();
        let mut sim = net.into_sim();
        sim.schedule_link_down(SimTime::ZERO, failed);
        for i in 0..50 {
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 1000);
        }
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 0);

        // With NIP + full protection: every probe survives.
        let mut net = KarNetwork::new(&topo, DeflectionTechnique::Nip).with_seed(3);
        net.install_route(as1, as3, &Protection::AutoFull).unwrap();
        let mut sim = net.into_sim();
        sim.schedule_link_down(SimTime::ZERO, failed);
        for i in 0..50 {
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 1000);
        }
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 50, "{:?}", sim.stats());
        assert!(sim.stats().deflections >= 50);
    }

    #[test]
    fn hitless_property_no_packet_loss_with_protection() {
        // The paper's liveness claim: with driven deflections, in-flight
        // packets reach the destination despite the failure — no loss.
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        for (a, b) in topo15::FAILURE_LOCATIONS {
            let mut net = KarNetwork::new(&topo, DeflectionTechnique::Nip).with_seed(11);
            net.install_route(as1, as3, &Protection::AutoFull).unwrap();
            let mut sim = net.into_sim();
            sim.schedule_link_down(SimTime::ZERO, topo.expect_link(a, b));
            for i in 0..100 {
                sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
            }
            sim.run_to_quiescence();
            assert_eq!(
                sim.stats().delivered,
                100,
                "failure {a}-{b}: {:?}",
                sim.stats()
            );
        }
    }

    #[test]
    fn unprotected_nip_still_delivers_by_wandering() {
        // Without protection, NIP random walks; packets may surface at
        // AS2 (wrong edge) and get re-encoded by the controller. With a
        // generous TTL everything eventually arrives.
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let mut net = KarNetwork::new(&topo, DeflectionTechnique::Nip)
            .with_seed(5)
            .with_ttl(255);
        net.install_route(as1, as3, &Protection::None).unwrap();
        let mut sim = net.into_sim();
        sim.schedule_link_down(SimTime::ZERO, topo.expect_link("SW7", "SW13"));
        for i in 0..50 {
            sim.inject(as1, as3, FlowId(0), i, PacketKind::Probe, 500);
        }
        sim.run_to_quiescence();
        let s = sim.stats();
        assert!(
            s.delivered >= 45,
            "most random-walking probes should arrive: {s:?}"
        );
        assert!(
            s.mean_hops() > 4.0,
            "wandering costs hops: {}",
            s.mean_hops()
        );
    }

    #[test]
    fn builder_knobs() {
        let topo = topo15::build();
        let net = KarNetwork::new(&topo, DeflectionTechnique::Avp)
            .with_seed(9)
            .with_ttl(32)
            .with_reroute(ReroutePolicy::Drop);
        assert_eq!(net.topology().node_count(), 15);
        let sim = net.into_sim();
        assert_eq!(sim.forwarder().name(), "AVP");
    }
}
