//! Error type of the KAR routing system.

use kar_rns::RnsError;
use kar_topology::NodeId;
use std::fmt;

/// Errors raised while planning, encoding or installing KAR routes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KarError {
    /// No path exists between the requested endpoints.
    NoPath {
        /// Requested source edge.
        src: NodeId,
        /// Requested destination edge.
        dst: NodeId,
    },
    /// Two consecutive nodes of a supplied path are not adjacent.
    NotAdjacent {
        /// The node lacking a link to `to`.
        from: NodeId,
        /// The unreachable neighbour.
        to: NodeId,
    },
    /// A protection segment references a switch already present in the
    /// route ID with a *different* output port. Each switch has exactly
    /// one residue per route ID — the paper's intrinsic constraint
    /// (§3.2, Fig. 8 discussion).
    SwitchConflict {
        /// The switch with two incompatible port assignments.
        switch_id: u64,
        /// Port already encoded.
        existing_port: u64,
        /// Port the new segment asked for.
        requested_port: u64,
    },
    /// A protection segment starts at an edge node (only core switches
    /// forward by residue).
    NotACoreSwitch {
        /// The offending node.
        node: NodeId,
    },
    /// A route ID does not fit its header field — the §2.3 overflow
    /// case that forces partial protection (see
    /// [`crate::wire::RouteHeader::pack`]).
    HeaderOverflow {
        /// Bits the route ID needs.
        needed_bits: u32,
        /// Bits the header field has.
        field_bits: u32,
    },
    /// The underlying RNS encoding failed (non-coprime IDs, residue out
    /// of range, …).
    Rns(RnsError),
    /// A service-chain waypoint repeats a switch the chain already
    /// visits (immediately or via an earlier leg): each switch has one
    /// residue per route ID, so no chain may stop at it twice.
    DuplicateWaypoint {
        /// The repeated switch.
        node: NodeId,
    },
    /// No route is installed for this `(src, dst)` pair.
    RouteNotInstalled {
        /// Requested source edge.
        src: NodeId,
        /// Requested destination edge.
        dst: NodeId,
    },
}

impl fmt::Display for KarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KarError::NoPath { src, dst } => write!(f, "no path from {src} to {dst}"),
            KarError::NotAdjacent { from, to } => {
                write!(f, "nodes {from} and {to} are not adjacent")
            }
            KarError::SwitchConflict {
                switch_id,
                existing_port,
                requested_port,
            } => write!(
                f,
                "switch {switch_id} already encodes port {existing_port}, cannot also encode port {requested_port}"
            ),
            KarError::NotACoreSwitch { node } => {
                write!(f, "node {node} is not a core switch")
            }
            KarError::HeaderOverflow {
                needed_bits,
                field_bits,
            } => write!(
                f,
                "route ID needs {needed_bits} bits but the header field has {field_bits}"
            ),
            KarError::DuplicateWaypoint { node } => {
                write!(f, "waypoint {node} repeats a switch the chain already visits")
            }
            KarError::Rns(e) => write!(f, "rns encoding failed: {e}"),
            KarError::RouteNotInstalled { src, dst } => {
                write!(f, "no route installed from {src} to {dst}")
            }
        }
    }
}

impl std::error::Error for KarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KarError::Rns(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RnsError> for KarError {
    fn from(e: RnsError) -> Self {
        KarError::Rns(e)
    }
}

impl From<kar_topology::paths::PathError> for KarError {
    fn from(e: kar_topology::paths::PathError) -> Self {
        match e {
            kar_topology::paths::PathError::NotAdjacent { from, to } => {
                KarError::NotAdjacent { from, to }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_constraint() {
        let e = KarError::SwitchConflict {
            switch_id: 73,
            existing_port: 1,
            requested_port: 2,
        };
        assert!(e.to_string().contains("switch 73"));
        let e = KarError::Rns(RnsError::Empty);
        assert!(e.to_string().contains("rns"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn header_overflow_names_both_widths() {
        let e = KarError::HeaderOverflow {
            needed_bits: 10,
            field_bits: 9,
        };
        assert!(e.to_string().contains("10 bits"), "{e}");
        assert!(e.to_string().contains("has 9"), "{e}");
        assert!(std::error::Error::source(&e).is_none());
    }
}
