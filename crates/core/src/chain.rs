//! Service chaining over KAR routes (paper §5 future work: "investigate
//! the application of KAR in the service chaining of virtualized network
//! functions").
//!
//! A service chain is a route forced through an ordered set of waypoint
//! switches (where the network functions sit). Because KAR gives each
//! switch exactly one residue per route ID, a valid chain must visit
//! every switch at most once — the same intrinsic constraint as Fig. 8.
//! [`chain_path`] stitches shortest-path segments between consecutive
//! waypoints and rejects chains that would revisit a switch.

use crate::error::KarError;
use kar_topology::{NodeId, Topology};
use std::collections::HashSet;

/// Computes a loop-free path `src → w₁ → … → wₙ → dst`.
///
/// Each leg is a shortest path; legs are not allowed to revisit nodes
/// used by earlier legs (one residue per switch). Later legs route
/// around already-used switches when possible.
///
/// # Errors
///
/// [`KarError::DuplicateWaypoint`] when a stop repeats a switch the
/// chain already visits — including a waypoint equal to its
/// predecessor (a zero-length leg) and `src` itself as the first
/// waypoint, which earlier versions silently accepted.
/// [`KarError::NoPath`] when some leg cannot be completed without
/// revisiting an earlier switch.
///
/// # Examples
///
/// ```
/// use kar::chain_path;
/// use kar_topology::topo15;
///
/// let topo = topo15::build();
/// let path = chain_path(
///     &topo,
///     topo.expect("AS1"),
///     &[topo.expect("SW17")], // force traffic through a middlebox
///     topo.expect("AS3"),
/// )?;
/// assert!(path.contains(&topo.expect("SW17")));
/// # Ok::<(), kar::KarError>(())
/// ```
pub fn chain_path(
    topo: &Topology,
    src: NodeId,
    waypoints: &[NodeId],
    dst: NodeId,
) -> Result<Vec<NodeId>, KarError> {
    let mut full: Vec<NodeId> = vec![src];
    let mut used: HashSet<NodeId> = [src].into_iter().collect();
    let mut cur = src;
    let stops: Vec<NodeId> = waypoints.iter().copied().chain([dst]).collect();
    for &stop in &stops {
        if used.contains(&stop) {
            // An earlier leg already consumed this switch's residue.
            // `used` always holds `cur`, so this also rejects a
            // waypoint equal to its predecessor (the old `stop != cur`
            // exemption let those — and src as the first waypoint —
            // slip through as silent zero-length legs).
            return Err(KarError::DuplicateWaypoint { node: stop });
        }
        let leg = bfs_avoiding_nodes(topo, cur, stop, &used).ok_or(KarError::NoPath {
            src: cur,
            dst: stop,
        })?;
        for &n in &leg[1..] {
            used.insert(n);
            full.push(n);
        }
        cur = stop;
    }
    Ok(full)
}

/// BFS shortest path avoiding a set of nodes (except the endpoints).
fn bfs_avoiding_nodes(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    avoid: &HashSet<NodeId>,
) -> Option<Vec<NodeId>> {
    use std::collections::VecDeque;
    if src == dst {
        return Some(vec![src]);
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; topo.node_count()];
    let mut seen = vec![false; topo.node_count()];
    seen[src.0] = true;
    let mut q = VecDeque::from([src]);
    while let Some(n) = q.pop_front() {
        let mut peers: Vec<NodeId> = topo.neighbors(n).map(|(_, _, p)| p).collect();
        peers.sort();
        for peer in peers {
            if seen[peer.0] || (avoid.contains(&peer) && peer != dst) {
                continue;
            }
            seen[peer.0] = true;
            prev[peer.0] = Some(n);
            if peer == dst {
                let mut path = vec![dst];
                let mut cur = dst;
                while cur != src {
                    cur = prev[cur.0].expect("predecessor chain intact");
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            q.push_back(peer);
        }
    }
    None
}

/// Returns `true` if `path` visits `waypoints` in order.
pub fn visits_in_order(path: &[NodeId], waypoints: &[NodeId]) -> bool {
    let mut iter = path.iter();
    waypoints.iter().all(|w| iter.by_ref().any(|n| n == w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_topology::{paths, topo15};

    #[test]
    fn chain_visits_waypoints_in_order() {
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let w = [topo.expect("SW17"), topo.expect("SW41")];
        let path = chain_path(&topo, as1, &w, as3).unwrap();
        assert_eq!(path.first(), Some(&as1));
        assert_eq!(path.last(), Some(&as3));
        assert!(visits_in_order(&path, &w));
        // No switch appears twice (one residue per switch).
        let mut seen = HashSet::new();
        assert!(path.iter().all(|&n| seen.insert(n)), "{path:?}");
        assert!(paths::links_along(&topo, &path).is_ok());
    }

    #[test]
    fn chain_routes_around_used_switches() {
        // AS1 → SW11 → SW31 → AS3: the SW11→SW31 leg must route around
        // SW10 (already consumed by the first leg).
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let w = [topo.expect("SW11"), topo.expect("SW31")];
        let path = chain_path(&topo, as1, &w, as3).unwrap();
        assert!(visits_in_order(&path, &w));
        let mut seen = HashSet::new();
        assert!(path.iter().all(|&n| seen.insert(n)), "revisit in {path:?}");
        assert!(paths::links_along(&topo, &path).is_ok());
    }

    #[test]
    fn impossible_chain_is_rejected() {
        // AS2 attaches at SW23, so the first leg to SW43 consumes SW23's
        // residue; demanding SW23 as a later waypoint must fail — one
        // residue per switch (the paper's intrinsic constraint).
        let topo = topo15::build();
        let as2 = topo.expect("AS2");
        let as3 = topo.expect("AS3");
        let w = [topo.expect("SW43"), topo.expect("SW23")];
        let err = chain_path(&topo, as2, &w, as3).unwrap_err();
        assert_eq!(
            err,
            KarError::DuplicateWaypoint {
                node: topo.expect("SW23")
            }
        );
    }

    #[test]
    fn consecutive_duplicate_waypoints_are_rejected() {
        // The old `stop != cur` exemption turned SW17 → SW17 into a
        // silent zero-length leg; it must be a DuplicateWaypoint.
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let sw17 = topo.expect("SW17");
        let err = chain_path(&topo, as1, &[sw17, sw17], as3).unwrap_err();
        assert_eq!(err, KarError::DuplicateWaypoint { node: sw17 });
        assert!(err.to_string().contains("repeats"), "{err}");
    }

    #[test]
    fn src_as_first_waypoint_is_rejected() {
        // src is in the used set from the start; naming it as a
        // waypoint used to slip through the same exemption.
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let err = chain_path(&topo, as1, &[as1], as3).unwrap_err();
        assert_eq!(err, KarError::DuplicateWaypoint { node: as1 });
    }

    #[test]
    fn chained_route_encodes_and_forwards() {
        use crate::{DeflectionTechnique, KarNetwork, Protection};
        use kar_simnet::{FlowId, PacketKind};
        let topo = topo15::build();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let w = [topo.expect("SW17"), topo.expect("SW41")];
        let path = chain_path(&topo, as1, &w, as3).unwrap();
        let hops = path.len() - 2;
        let mut net = KarNetwork::builder(&topo, DeflectionTechnique::Nip)
            .seed(2)
            .tracing()
            .build();
        net.install_explicit(path, &Protection::None).unwrap();
        let mut sim = net.into_sim();
        sim.inject(as1, as3, FlowId(0), 0, PacketKind::Probe, 500);
        sim.run_to_quiescence();
        assert_eq!(sim.stats().delivered, 1);
        assert_eq!(sim.stats().max_hops as usize, hops);
        let trace = sim.trace().get(0).unwrap();
        assert!(visits_in_order(&trace.path, &w), "{}", trace.pretty(&topo));
    }

    #[test]
    fn in_order_check() {
        let a = NodeId(1);
        let b = NodeId(2);
        let c = NodeId(3);
        assert!(visits_in_order(&[a, b, c], &[a, c]));
        assert!(!visits_in_order(&[a, b, c], &[c, a]));
        assert!(visits_in_order(&[a, b, c], &[]));
    }
}
