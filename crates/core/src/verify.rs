//! Exhaustive resilience verification of encoded routes.
//!
//! Simulation samples one random trajectory per packet; this module
//! explores *all* of them. A packet inside the core is fully described
//! by `(switch, input port, deflected-flag)` — KAR cores are stateless,
//! so the forwarding relation over those states is finite and can be
//! enumerated. [`verify_route`] builds that state graph for one encoded
//! route under one failure set, mirroring [`KarForwarder`]'s decision
//! procedure choice-for-choice (residue first, then the technique's
//! deflection candidate set), and classifies what can happen to a
//! packet:
//!
//! * [`Outcome::Delivered`] — every trajectory reaches the destination.
//! * [`Outcome::WrongEdge`] — no trajectory is lost in the core, but
//!   some surface at a different edge (rescued by the paper's §2.1
//!   controller re-encoding, at a latency cost).
//! * [`Outcome::TtlExceeded`] — a cycle exists but every cycle state can
//!   still escape: random deflection delivers with probability 1, yet a
//!   finite TTL may expire first.
//! * [`Outcome::Blackhole`] — some trajectory reaches a switch that must
//!   drop (witnessed by a concrete hop sequence).
//! * [`Outcome::Loop`] — a set of states exists that a packet can enter
//!   but never leave (an inescapable forwarding loop, witnessed by the
//!   cycle's switches). Deterministic techniques (`None`, and NIP at
//!   degree-2 switches) are the ones that can trap like this.
//!
//! [`verify_single_failures`] sweeps every ordered edge pair and every
//! single-link failure — the paper's k=1 resilience claim, checked
//! exhaustively instead of by sampling.
//!
//! [`KarForwarder`]: crate::KarForwarder

use crate::cache::EncodingCache;
use crate::controller::bfs_avoiding;
use crate::deflect::DeflectionTechnique;
use crate::error::KarError;
use crate::protection::Protection;
use crate::route::EncodedRoute;
use kar_topology::{paths, LinkId, NodeId, PortIx, Topology};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// A packet's complete core-network state: where it is, where it came
/// from, and whether it has ever been deflected (the only bit of header
/// state the techniques consult).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    node: NodeId,
    in_port: PortIx,
    deflected: bool,
}

/// What can terminate a trajectory at one state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Terminal {
    Delivered,
    WrongEdge(NodeId),
    Drop,
}

/// Classification of one `(route, failure set)` case, strongest
/// applicable label wins: `Loop > Blackhole > TtlExceeded > WrongEdge >
/// Delivered`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// Every trajectory ends at the destination edge, cycle-free.
    Delivered,
    /// No loss possible, but some trajectories exit at a non-destination
    /// edge (controller rescue needed).
    WrongEdge,
    /// Cycles exist but all are escapable: delivery with probability 1,
    /// modulo TTL.
    TtlExceeded,
    /// Some trajectory ends in a forced drop inside the core.
    Blackhole,
    /// Some reachable states form an inescapable forwarding loop.
    Loop,
}

impl Outcome {
    /// `true` for the outcomes where no packet is ever lost in the core
    /// (delivery to *an* edge is certain).
    pub fn is_lossless(self) -> bool {
        matches!(self, Outcome::Delivered | Outcome::WrongEdge)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Outcome::Delivered => "delivered",
            Outcome::WrongEdge => "wrong-edge",
            Outcome::TtlExceeded => "ttl-exceeded",
            Outcome::Blackhole => "blackhole",
            Outcome::Loop => "loop",
        };
        f.write_str(s)
    }
}

/// Everything [`verify_route`] learned about one case.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// The overall classification (see [`Outcome`] precedence).
    pub outcome: Outcome,
    /// Some trajectory reaches the destination.
    pub can_deliver: bool,
    /// Some trajectory surfaces at a non-destination edge.
    pub can_wrong_edge: bool,
    /// Some trajectory ends in a forced drop.
    pub can_blackhole: bool,
    /// The state graph contains a cycle (escapable or not).
    pub has_cycle: bool,
    /// Reachable `(switch, in-port, deflected)` states explored.
    pub states: usize,
    /// For [`Outcome::Loop`]: the switches of one inescapable cycle.
    pub loop_witness: Option<Vec<NodeId>>,
    /// For blackholes: the hop sequence (source edge to the dropping
    /// switch) of one trajectory that dies.
    pub blackhole_witness: Option<Vec<NodeId>>,
}

/// All moves the technique allows from one state. Mirrors
/// [`crate::KarForwarder`]: residue first, then the deflection candidate
/// set (core-facing ports preferred for AVP/NIP, input port excluded for
/// NIP, unrestricted for hot-potato's random walk).
fn possible_moves(
    topo: &Topology,
    route: &EncodedRoute,
    technique: DeflectionTechnique,
    failed: &HashSet<LinkId>,
    state: State,
) -> Result<Vec<(PortIx, bool)>, Terminal> {
    let node = topo.node(state.node);
    let switch_id = node
        .kind
        .switch_id()
        .expect("possible_moves is only called on core switches");
    let port_up = |p: PortIx| {
        node.ports
            .get(p as usize)
            .map(|l| !failed.contains(l))
            .unwrap_or(false)
    };
    let computed = route.port_at(switch_id);
    let residue_ok =
        |exclude_input: bool| port_up(computed) && !(exclude_input && computed == state.in_port);
    // The deflection candidate set of `random_port`: healthy ports minus
    // `exclude`, restricted to core-facing ports when any exist and the
    // technique prefers them.
    let deflection_set = |exclude: Option<PortIx>, prefer_core: bool| -> Vec<(PortIx, bool)> {
        let healthy: Vec<PortIx> = (0..node.ports.len() as PortIx)
            .filter(|&p| port_up(p) && Some(p) != exclude)
            .collect();
        let core: Vec<PortIx> = if prefer_core {
            healthy
                .iter()
                .copied()
                .filter(|&p| {
                    let link = node.ports[p as usize];
                    topo.switch_id(topo.link(link).peer_of(state.node))
                        .is_some()
                })
                .collect()
        } else {
            Vec::new()
        };
        let candidates = if core.is_empty() { healthy } else { core };
        candidates.into_iter().map(|p| (p, true)).collect()
    };
    let moves = match technique {
        DeflectionTechnique::None => {
            if residue_ok(false) {
                vec![(computed, state.deflected)]
            } else {
                Vec::new()
            }
        }
        DeflectionTechnique::HotPotato => {
            if state.deflected {
                deflection_set(None, false)
            } else if residue_ok(false) {
                vec![(computed, false)]
            } else {
                deflection_set(None, false)
            }
        }
        DeflectionTechnique::Avp => {
            if residue_ok(false) {
                vec![(computed, state.deflected)]
            } else {
                deflection_set(None, true)
            }
        }
        DeflectionTechnique::Nip => {
            if residue_ok(true) {
                vec![(computed, state.deflected)]
            } else {
                deflection_set(Some(state.in_port), true)
            }
        }
    };
    if moves.is_empty() {
        Err(Terminal::Drop)
    } else {
        Ok(moves)
    }
}

/// Where taking `port` from `state.node` lands: a successor state or a
/// terminal (an edge node).
fn step(
    topo: &Topology,
    dst: NodeId,
    from: NodeId,
    port: PortIx,
    deflected: bool,
) -> Result<State, Terminal> {
    let link = topo.node(from).ports[port as usize];
    let peer = topo.link(link).peer_of(from);
    if topo.switch_id(peer).is_none() {
        return Err(if peer == dst {
            Terminal::Delivered
        } else {
            Terminal::WrongEdge(peer)
        });
    }
    Ok(State {
        node: peer,
        in_port: topo.link(link).port_on(peer),
        deflected,
    })
}

/// Exhaustively classifies one encoded route under one failure set.
///
/// `src`/`dst` are the ingress and destination edges; the packet enters
/// the core through `route.uplink` exactly as the edge logic would send
/// it.
pub fn verify_route(
    topo: &Topology,
    route: &EncodedRoute,
    src: NodeId,
    dst: NodeId,
    technique: DeflectionTechnique,
    failed: &HashSet<LinkId>,
) -> VerifyReport {
    let mut report = VerifyReport {
        outcome: Outcome::Delivered,
        can_deliver: false,
        can_wrong_edge: false,
        can_blackhole: false,
        has_cycle: false,
        states: 0,
        loop_witness: None,
        blackhole_witness: None,
    };
    // The edge transmits blindly into its uplink; a failed uplink kills
    // every packet of the flow at hop zero.
    let uplink = topo.node(src).ports[route.uplink as usize];
    if failed.contains(&uplink) {
        report.can_blackhole = true;
        report.outcome = Outcome::Blackhole;
        report.blackhole_witness = Some(vec![src]);
        return report;
    }
    let first = topo.link(uplink).peer_of(src);
    debug_assert!(
        topo.switch_id(first).is_some(),
        "uplink peer is a core switch"
    );
    let initial = State {
        node: first,
        in_port: topo.link(uplink).port_on(first),
        deflected: false,
    };

    // Reachability sweep, recording the move relation and a predecessor
    // per state for witness reconstruction.
    let mut index: HashMap<State, usize> = HashMap::new();
    let mut states: Vec<State> = Vec::new();
    let mut succs: Vec<Vec<usize>> = Vec::new();
    let mut terminal_drop: Vec<bool> = Vec::new();
    let mut escapes: Vec<bool> = Vec::new(); // has an edge to a terminal
    let mut pred: Vec<Option<usize>> = Vec::new();
    let mut queue = VecDeque::new();
    index.insert(initial, 0);
    states.push(initial);
    succs.push(Vec::new());
    terminal_drop.push(false);
    escapes.push(false);
    pred.push(None);
    queue.push_back(0usize);
    while let Some(i) = queue.pop_front() {
        let state = states[i];
        match possible_moves(topo, route, technique, failed, state) {
            Err(Terminal::Drop) => {
                terminal_drop[i] = true;
                report.can_blackhole = true;
            }
            Err(_) => unreachable!("possible_moves only yields Drop terminals"),
            Ok(moves) => {
                for (port, deflected) in moves {
                    match step(topo, dst, state.node, port, deflected) {
                        Err(Terminal::Delivered) => {
                            report.can_deliver = true;
                            escapes[i] = true;
                        }
                        Err(Terminal::WrongEdge(_)) => {
                            report.can_wrong_edge = true;
                            escapes[i] = true;
                        }
                        Err(Terminal::Drop) => unreachable!("step never drops"),
                        Ok(next) => {
                            let j = *index.entry(next).or_insert_with(|| {
                                states.push(next);
                                succs.push(Vec::new());
                                terminal_drop.push(false);
                                escapes.push(false);
                                pred.push(Some(i));
                                queue.push_back(states.len() - 1);
                                states.len() - 1
                            });
                            if !succs[i].contains(&j) {
                                succs[i].push(j);
                            }
                        }
                    }
                }
            }
        }
    }
    report.states = states.len();

    if report.can_blackhole && report.blackhole_witness.is_none() {
        let die = (0..states.len())
            .find(|&i| terminal_drop[i])
            .expect("drop state exists");
        let mut path = Vec::new();
        let mut cur = Some(die);
        while let Some(i) = cur {
            path.push(states[i].node);
            cur = pred[i];
        }
        path.push(src);
        path.reverse();
        report.blackhole_witness = Some(path);
    }

    // Cycle and trap analysis on the inter-state relation. An SCC is a
    // trap when no member can drop (that would be a blackhole, reported
    // above), escape to an edge, or step outside the SCC.
    let sccs = tarjan_sccs(&succs);
    let mut scc_of = vec![0usize; states.len()];
    for (sid, scc) in sccs.iter().enumerate() {
        for &i in scc {
            scc_of[i] = sid;
        }
    }
    for (sid, scc) in sccs.iter().enumerate() {
        let cyclic = scc.len() > 1 || (scc.len() == 1 && succs[scc[0]].contains(&scc[0]));
        if !cyclic {
            continue;
        }
        report.has_cycle = true;
        let trapped = scc.iter().all(|&i| {
            !terminal_drop[i] && !escapes[i] && succs[i].iter().all(|&j| scc_of[j] == sid)
        });
        if trapped && report.loop_witness.is_none() {
            report.loop_witness = Some(loop_witness(&states, &succs, scc));
        }
    }

    report.outcome = if report.loop_witness.is_some() {
        Outcome::Loop
    } else if report.can_blackhole {
        Outcome::Blackhole
    } else if report.has_cycle {
        Outcome::TtlExceeded
    } else if report.can_wrong_edge {
        Outcome::WrongEdge
    } else {
        debug_assert!(report.can_deliver, "acyclic, lossless, on-target graph");
        Outcome::Delivered
    };
    report
}

/// One concrete cycle through a trap SCC, as the switches visited.
fn loop_witness(states: &[State], succs: &[Vec<usize>], scc: &[usize]) -> Vec<NodeId> {
    let members: HashSet<usize> = scc.iter().copied().collect();
    let start = scc[0];
    let mut seen = HashMap::new();
    let mut order = Vec::new();
    let mut cur = start;
    loop {
        if let Some(&at) = seen.get(&cur) {
            return order[at..]
                .iter()
                .map(|&i: &usize| states[i].node)
                .collect();
        }
        seen.insert(cur, order.len());
        order.push(cur);
        cur = *succs[cur]
            .iter()
            .find(|j| members.contains(j))
            .expect("trap SCC members stay inside the SCC");
    }
}

/// Iterative Tarjan strongly-connected components (indices into the
/// state arrays). Iterative because NIP walks on larger topologies can
/// produce graphs deeper than the default stack would like.
fn tarjan_sccs(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succs.len();
    let mut idx = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut sccs = Vec::new();
    let mut counter = 0usize;
    // (node, next successor position)
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if idx[root] != usize::MAX {
            continue;
        }
        call.push((root, 0));
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                idx[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succs[v].get(*pos) {
                *pos += 1;
                if idx[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(idx[w]);
                }
            } else {
                if low[v] == idx[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    sccs
}

/// One entry of a [`verify_single_failures`] sweep.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Ingress edge.
    pub src: NodeId,
    /// Destination edge.
    pub dst: NodeId,
    /// The single failed link.
    pub failed: LinkId,
    /// `true` when the failure physically disconnects `src` from `dst` —
    /// no scheme can deliver; not counted as a resilience violation.
    pub disconnected: bool,
    /// The exhaustive classification.
    pub report: VerifyReport,
}

/// Exhaustively verifies every ordered edge pair of `topo` against every
/// single-link failure (the k=1 sweep), with shortest-path routes under
/// `protection`.
///
/// # Errors
///
/// Propagates route-encoding errors ([`KarError`]); unreachable pairs on
/// the *intact* topology are skipped, not errors.
pub fn verify_single_failures(
    topo: &Topology,
    technique: DeflectionTechnique,
    protection: &Protection,
    cache: &EncodingCache,
) -> Result<Vec<CaseResult>, KarError> {
    let edges = topo.edge_nodes();
    let mut out = Vec::new();
    for &src in &edges {
        for &dst in &edges {
            if src == dst {
                continue;
            }
            let Some(primary) = paths::bfs_shortest_path(topo, src, dst) else {
                continue;
            };
            let route = cache.encode_with_protection(topo, primary, protection)?;
            for link in 0..topo.link_count() {
                let link = LinkId(link);
                let failed: HashSet<LinkId> = [link].into_iter().collect();
                let disconnected = bfs_avoiding(topo, src, dst, &failed).is_none();
                let report = verify_route(topo, &route, src, dst, technique, &failed);
                out.push(CaseResult {
                    src,
                    dst,
                    failed: link,
                    disconnected,
                    report,
                });
            }
        }
    }
    Ok(out)
}

/// Aggregate view of a sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifySummary {
    /// Cases verified.
    pub total: usize,
    /// Count per outcome, in [`Outcome`] order (delivered, wrong-edge,
    /// ttl-exceeded, blackhole, loop).
    pub by_outcome: [usize; 5],
    /// Cases where the failure disconnected the pair.
    pub disconnected: usize,
    /// Connected cases classified blackhole or loop — the failures the
    /// scheme does not survive.
    pub violations: usize,
}

impl VerifySummary {
    /// Count for one outcome.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.by_outcome[outcome as usize]
    }
}

/// Folds sweep results into counts; `violations` are connected cases
/// that still black-hole or loop.
pub fn summarize(results: &[CaseResult]) -> VerifySummary {
    let mut s = VerifySummary {
        total: results.len(),
        ..VerifySummary::default()
    };
    for case in results {
        s.by_outcome[case.report.outcome as usize] += 1;
        if case.disconnected {
            s.disconnected += 1;
        } else if matches!(case.report.outcome, Outcome::Blackhole | Outcome::Loop) {
            s.violations += 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflect::KarForwarder;
    use crate::route::RouteSpec;
    use kar_simnet::{ForwardDecision, Forwarder, Packet, RouteTag, SwitchCtx};
    use kar_topology::topo15;

    #[test]
    fn intact_primary_route_is_delivered() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let route = EncodedRoute::encode(&topo, &RouteSpec::unprotected(primary)).unwrap();
        let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
        for technique in DeflectionTechnique::ALL {
            let report = verify_route(&topo, &route, src, dst, technique, &HashSet::new());
            assert_eq!(report.outcome, Outcome::Delivered, "{technique}");
            assert_eq!(report.states, 4, "{technique}: one state per hop");
        }
    }

    #[test]
    fn no_deflection_blackholes_with_witness() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let route = EncodedRoute::encode(&topo, &RouteSpec::unprotected(primary)).unwrap();
        let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
        let failed: HashSet<LinkId> = [topo.expect_link("SW7", "SW13")].into_iter().collect();
        let report = verify_route(&topo, &route, src, dst, DeflectionTechnique::None, &failed);
        assert_eq!(report.outcome, Outcome::Blackhole);
        let witness = report.blackhole_witness.unwrap();
        assert_eq!(
            witness,
            vec![src, topo.expect("SW10"), topo.expect("SW7")],
            "dies at SW7, upstream of the failure"
        );
    }

    #[test]
    fn failed_uplink_is_an_immediate_blackhole() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let route = EncodedRoute::encode(&topo, &RouteSpec::unprotected(primary)).unwrap();
        let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
        let failed: HashSet<LinkId> = [topo.expect_link("AS1", "SW10")].into_iter().collect();
        for technique in DeflectionTechnique::ALL {
            let report = verify_route(&topo, &route, src, dst, technique, &failed);
            assert_eq!(report.outcome, Outcome::Blackhole, "{technique}");
            assert_eq!(report.blackhole_witness, Some(vec![src]));
        }
    }

    #[test]
    fn protected_nip_survives_all_paper_failures() {
        // The §3 scenario, proven instead of sampled: NIP + full
        // protection delivers every trajectory for each Fig. 4 failure.
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let cache = EncodingCache::new();
        let route = cache
            .encode_with_protection(&topo, primary, &Protection::AutoFull)
            .unwrap();
        let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
        for (a, b) in topo15::FAILURE_LOCATIONS {
            let failed: HashSet<LinkId> = [topo.expect_link(a, b)].into_iter().collect();
            let report = verify_route(&topo, &route, src, dst, DeflectionTechnique::Nip, &failed);
            assert!(
                report.outcome.is_lossless(),
                "{a}-{b}: {:?}",
                report.outcome
            );
            assert!(report.can_deliver);
        }
    }

    /// The verifier's move relation must match the sampled dataplane: at
    /// every reachable state the set of ports `KarForwarder` can emit
    /// over many RNG draws equals the verifier's `possible_moves`.
    #[test]
    fn moves_match_the_sampled_forwarder() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let cache = EncodingCache::new();
        let route = cache
            .encode_with_protection(&topo, primary, &Protection::AutoFull)
            .unwrap();
        let failed: HashSet<LinkId> = [topo.expect_link("SW7", "SW13")].into_iter().collect();
        let mut rng = StdRng::seed_from_u64(77);
        for technique in DeflectionTechnique::ALL {
            let mut fwd = KarForwarder::new(technique);
            for node in topo.core_nodes() {
                let ports = topo.node(node).ports.clone();
                let statuses: Vec<bool> = ports.iter().map(|l| !failed.contains(l)).collect();
                for in_port in 0..ports.len() as PortIx {
                    for deflected in [false, true] {
                        let state = State {
                            node,
                            in_port,
                            deflected,
                        };
                        let expected = possible_moves(&topo, &route, technique, &failed, state);
                        let mut sampled = HashSet::new();
                        let mut dropped = false;
                        for _ in 0..200 {
                            let mut tag = RouteTag::new(route.route_id.clone());
                            tag.deflected = deflected;
                            let mut pkt = Packet {
                                id: 0,
                                flow: kar_simnet::FlowId(0),
                                seq: 0,
                                kind: kar_simnet::PacketKind::Probe,
                                size_bytes: 64,
                                src: NodeId(0),
                                dst: NodeId(1),
                                route: Some(tag),
                                ttl: 64,
                                hops: 0,
                                deflections: 0,
                                created: kar_simnet::SimTime::ZERO,
                            };
                            let ctx = SwitchCtx {
                                topo: &topo,
                                node,
                                switch_id: topo.switch_id(node).unwrap(),
                                in_port: Some(in_port),
                                ports: &statuses,
                                now: kar_simnet::SimTime::ZERO,
                                reducer: None,
                            };
                            match fwd.forward(&ctx, &mut pkt, &mut rng) {
                                ForwardDecision::Output(p) => {
                                    sampled.insert(p);
                                }
                                ForwardDecision::Drop(_) => dropped = true,
                            }
                        }
                        match expected {
                            Err(Terminal::Drop) => {
                                assert!(
                                    dropped && sampled.is_empty(),
                                    "{technique} at {node:?}/{in_port}/{deflected}"
                                );
                            }
                            Err(_) => unreachable!(),
                            Ok(moves) => {
                                let ports: HashSet<PortIx> =
                                    moves.iter().map(|&(p, _)| p).collect();
                                assert!(!dropped, "{technique} at {node:?}/{in_port}");
                                assert_eq!(
                                    sampled, ports,
                                    "{technique} at {node:?}/{in_port}/{deflected}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn summary_counts_and_violations() {
        let topo = topo15::build();
        let cache = EncodingCache::new();
        let results =
            verify_single_failures(&topo, DeflectionTechnique::None, &Protection::None, &cache)
                .unwrap();
        // 3 edges → 6 ordered pairs × 22 links.
        assert_eq!(results.len(), 6 * 22);
        let summary = summarize(&results);
        assert_eq!(summary.total, 132);
        // No-deflection blackholes exactly when one of its own primary
        // links fails — 28 primary links summed over the six pairs. The
        // 12 edge-uplink cuts among them also disconnect the pair, so
        // they are not counted as violations.
        assert_eq!(summary.count(Outcome::Blackhole), 28, "{summary:?}");
        assert_eq!(summary.violations, 16, "{summary:?}");
        assert_eq!(
            summary.disconnected, 12,
            "each pair is disconnected by exactly its two edge uplinks"
        );
        assert_eq!(summary.count(Outcome::Loop), 0);
    }

    /// The exhaustive topo15 classification, pinned per dataplane: every
    /// `(src, dst, single-link-failure)` case under auto-planned full
    /// protection. These are regression anchors — a forwarder or planner
    /// change that shifts any count must be reviewed against them.
    ///
    /// Notable facts the table proves:
    ///
    /// * **HP, AVP and NIP never lose a deliverable packet**: all 6
    ///   blackholes (and AVP/NIP's 6 loops) are edge-uplink cuts that
    ///   physically disconnect the pair — violations are 0.
    /// * **NIP dominates**: 120 delivered with no TTL-exceeded tail; HP
    ///   random-walks into 22 TTL-bounded wanderings, AVP into 10.
    /// * Without deflection, 16 survivable failures blackhole.
    #[test]
    fn exhaustive_topo15_classification_is_pinned() {
        let topo = topo15::build();
        let cache = EncodingCache::new();
        // (technique, delivered, ttl, blackhole, loop, violations)
        let expected = [
            (DeflectionTechnique::None, 104, 0, 28, 0, 16),
            (DeflectionTechnique::HotPotato, 104, 22, 6, 0, 0),
            (DeflectionTechnique::Avp, 110, 10, 6, 6, 0),
            (DeflectionTechnique::Nip, 120, 0, 6, 6, 0),
        ];
        for (technique, delivered, ttl, blackhole, looped, violations) in expected {
            let results =
                verify_single_failures(&topo, technique, &Protection::AutoFull, &cache).unwrap();
            let s = summarize(&results);
            assert_eq!(s.total, 132, "{technique}");
            assert_eq!(s.count(Outcome::Delivered), delivered, "{technique}: {s:?}");
            assert_eq!(s.count(Outcome::WrongEdge), 0, "{technique}: {s:?}");
            assert_eq!(s.count(Outcome::TtlExceeded), ttl, "{technique}: {s:?}");
            assert_eq!(s.count(Outcome::Blackhole), blackhole, "{technique}: {s:?}");
            assert_eq!(s.count(Outcome::Loop), looped, "{technique}: {s:?}");
            assert_eq!(s.disconnected, 12, "{technique}: {s:?}");
            assert_eq!(s.violations, violations, "{technique}: {s:?}");
            // The resilience guarantee, stated directly: every connected
            // case under a deflecting dataplane ends lossless or
            // TTL-bounded — never a blackhole, never a loop.
            if technique != DeflectionTechnique::None {
                for case in results.iter().filter(|c| !c.disconnected) {
                    assert!(
                        !matches!(case.report.outcome, Outcome::Blackhole | Outcome::Loop),
                        "{technique}: {:?} -> {:?} failing {:?}: {:?}",
                        case.src,
                        case.dst,
                        case.failed,
                        case.report.outcome
                    );
                }
            }
        }
    }
}
