//! Exhaustive resilience verification of encoded routes.
//!
//! Simulation samples one random trajectory per packet; this module
//! explores *all* of them. A packet inside the core is fully described
//! by `(switch, input port, deflected-flag)` — KAR cores are stateless,
//! so the forwarding relation over those states is finite and can be
//! enumerated. [`verify_route`] builds that state graph for one encoded
//! route under one failure set, mirroring [`KarForwarder`]'s decision
//! procedure choice-for-choice (residue first, then the technique's
//! deflection candidate set), and classifies what can happen to a
//! packet:
//!
//! * [`Outcome::Delivered`] — every trajectory reaches the destination.
//! * [`Outcome::WrongEdge`] — no trajectory is lost in the core, but
//!   some surface at a different edge (rescued by the paper's §2.1
//!   controller re-encoding, at a latency cost).
//! * [`Outcome::TtlExceeded`] — a cycle exists but every cycle state can
//!   still escape: random deflection delivers with probability 1, yet a
//!   finite TTL may expire first.
//! * [`Outcome::Blackhole`] — some trajectory reaches a switch that must
//!   drop (witnessed by a concrete hop sequence).
//! * [`Outcome::Loop`] — a set of states exists that a packet can enter
//!   but never leave (an inescapable forwarding loop, witnessed by the
//!   cycle's switches). Deterministic techniques (`None`, and NIP at
//!   degree-2 switches) are the ones that can trap like this.
//!
//! [`verify_single_failures`] sweeps every ordered edge pair and every
//! single-link failure — the paper's k=1 resilience claim, checked
//! exhaustively instead of by sampling.
//!
//! ## k-failure verification
//!
//! [`verify_failure_sets`] generalizes the sweep to every failure set of
//! size k (k = 2, 3 are practical). Enumerating C(L, k) sets per pair is
//! only feasible because most of them are *equivalent*: the exploration
//! of one case consults the status of only a few links (the source
//! uplink plus the ports of every switch the packet can reach), recorded
//! in [`VerifyReport::relevant_links`]. Two failure sets with the same
//! projection onto that relevant set produce byte-identical explorations,
//! so [`PairVerifier`] memoizes reports per projection and answers most
//! cases without running the state-graph search at all. Cycle detection
//! is by seen-state Tarjan SCCs, never TTL exhaustion, so the cost per
//! exploration is bounded by the state count, not the hop budget.
//!
//! Two further prunings are *sound* and used where they apply:
//!
//! * **Disconnection is monotone**: any superset of a set that physically
//!   disconnects `src` from `dst` also disconnects them, so supersets of
//!   known disconnecting sets skip the reachability check (and, in
//!   [`min_failure_set`], the whole classification — a disconnected pair
//!   is not a resilience violation).
//! * **Connectivity is automorphism-invariant**: on generated ring/grid
//!   topologies (dihedral symmetry) the disconnection verdict is shared
//!   across the orbit of `(src, dst, failure set)` under
//!   [`kar_topology::sym::Symmetry`]. Note the *outcome* is not shared:
//!   KAR forwarding depends on switch IDs and port numbering, which
//!   structural automorphisms do not preserve.
//!
//! Outcome classes themselves (blackhole, loop) are **not** monotone
//! under adding failures for the deflecting techniques — failing the
//! residue link of a dead-end branch can force a deflection that
//! *rescues* the packet — so no superset of a blackholed set is ever
//! skipped on that basis. The projection memo is what makes the sweep
//! fast without assuming monotonicity that does not hold.
//!
//! [`min_failure_set`] is the breaking-point search built on the same
//! machinery: the lexicographically smallest failure set of minimum size
//! that blackholes or loops a pair without disconnecting it.
//!
//! [`KarForwarder`]: crate::KarForwarder

use crate::cache::EncodingCache;
use crate::controller::bfs_avoiding;
use crate::deflect::DeflectionTechnique;
use crate::error::KarError;
use crate::protection::Protection;
use crate::route::EncodedRoute;
use kar_topology::sym::Symmetry;
use kar_topology::{paths, LinkId, NodeId, PortIx, Topology};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// A packet's complete core-network state: where it is, where it came
/// from, and whether it has ever been deflected (the only bit of header
/// state the techniques consult).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct State {
    pub(crate) node: NodeId,
    pub(crate) in_port: PortIx,
    pub(crate) deflected: bool,
}

/// What can terminate a trajectory at one state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Terminal {
    Delivered,
    WrongEdge(NodeId),
    Drop,
}

/// Classification of one `(route, failure set)` case, strongest
/// applicable label wins: `Loop > Blackhole > TtlExceeded > WrongEdge >
/// Delivered`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// Every trajectory ends at the destination edge, cycle-free.
    Delivered,
    /// No loss possible, but some trajectories exit at a non-destination
    /// edge (controller rescue needed).
    WrongEdge,
    /// Cycles exist but all are escapable: delivery with probability 1,
    /// modulo TTL.
    TtlExceeded,
    /// Some trajectory ends in a forced drop inside the core.
    Blackhole,
    /// Some reachable states form an inescapable forwarding loop.
    Loop,
}

impl Outcome {
    /// `true` for the outcomes where no packet is ever lost in the core
    /// (delivery to *an* edge is certain).
    pub fn is_lossless(self) -> bool {
        matches!(self, Outcome::Delivered | Outcome::WrongEdge)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Outcome::Delivered => "delivered",
            Outcome::WrongEdge => "wrong-edge",
            Outcome::TtlExceeded => "ttl-exceeded",
            Outcome::Blackhole => "blackhole",
            Outcome::Loop => "loop",
        };
        f.write_str(s)
    }
}

/// Everything [`verify_route`] learned about one case.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// The overall classification (see [`Outcome`] precedence).
    pub outcome: Outcome,
    /// Some trajectory reaches the destination.
    pub can_deliver: bool,
    /// Some trajectory surfaces at a non-destination edge.
    pub can_wrong_edge: bool,
    /// Some trajectory ends in a forced drop.
    pub can_blackhole: bool,
    /// The state graph contains a cycle (escapable or not).
    pub has_cycle: bool,
    /// Reachable `(switch, in-port, deflected)` states explored.
    pub states: usize,
    /// For [`Outcome::Loop`]: the switches of one inescapable cycle.
    pub loop_witness: Option<Vec<NodeId>>,
    /// For blackholes: the hop sequence (source edge to the dropping
    /// switch) of one trajectory that dies.
    pub blackhole_witness: Option<Vec<NodeId>>,
    /// Every link whose up/down status the exploration consulted: the
    /// source uplink plus all ports of every reachable switch, sorted.
    /// The outcome is a pure function of the failure set's intersection
    /// with this list — the memoization key of [`PairVerifier`].
    pub relevant_links: Vec<LinkId>,
}

/// All moves the technique allows from one state. Mirrors
/// [`crate::KarForwarder`]: residue first, then the deflection candidate
/// set (core-facing ports preferred for AVP/NIP, input port excluded for
/// NIP, unrestricted for hot-potato's random walk).
pub(crate) fn possible_moves(
    topo: &Topology,
    route: &EncodedRoute,
    technique: DeflectionTechnique,
    failed: &HashSet<LinkId>,
    state: State,
) -> Result<Vec<(PortIx, bool)>, Terminal> {
    let node = topo.node(state.node);
    let switch_id = node
        .kind
        .switch_id()
        .expect("possible_moves is only called on core switches");
    let port_up = |p: PortIx| {
        node.ports
            .get(p as usize)
            .map(|l| !failed.contains(l))
            .unwrap_or(false)
    };
    let computed = route.port_at(switch_id);
    let residue_ok =
        |exclude_input: bool| port_up(computed) && !(exclude_input && computed == state.in_port);
    // The deflection candidate set of `random_port`: healthy ports minus
    // `exclude`, restricted to core-facing ports when any exist and the
    // technique prefers them.
    let deflection_set = |exclude: Option<PortIx>, prefer_core: bool| -> Vec<(PortIx, bool)> {
        let healthy: Vec<PortIx> = (0..node.ports.len() as PortIx)
            .filter(|&p| port_up(p) && Some(p) != exclude)
            .collect();
        let core: Vec<PortIx> = if prefer_core {
            healthy
                .iter()
                .copied()
                .filter(|&p| {
                    let link = node.ports[p as usize];
                    topo.switch_id(topo.link(link).peer_of(state.node))
                        .is_some()
                })
                .collect()
        } else {
            Vec::new()
        };
        let candidates = if core.is_empty() { healthy } else { core };
        candidates.into_iter().map(|p| (p, true)).collect()
    };
    let moves = match technique {
        DeflectionTechnique::None => {
            if residue_ok(false) {
                vec![(computed, state.deflected)]
            } else {
                Vec::new()
            }
        }
        DeflectionTechnique::HotPotato => {
            if state.deflected {
                deflection_set(None, false)
            } else if residue_ok(false) {
                vec![(computed, false)]
            } else {
                deflection_set(None, false)
            }
        }
        DeflectionTechnique::Avp => {
            if residue_ok(false) {
                vec![(computed, state.deflected)]
            } else {
                deflection_set(None, true)
            }
        }
        DeflectionTechnique::Nip => {
            if residue_ok(true) {
                vec![(computed, state.deflected)]
            } else {
                deflection_set(Some(state.in_port), true)
            }
        }
    };
    if moves.is_empty() {
        Err(Terminal::Drop)
    } else {
        Ok(moves)
    }
}

/// Where taking `port` from `state.node` lands: a successor state or a
/// terminal (an edge node).
pub(crate) fn step(
    topo: &Topology,
    dst: NodeId,
    from: NodeId,
    port: PortIx,
    deflected: bool,
) -> Result<State, Terminal> {
    let link = topo.node(from).ports[port as usize];
    let peer = topo.link(link).peer_of(from);
    if topo.switch_id(peer).is_none() {
        return Err(if peer == dst {
            Terminal::Delivered
        } else {
            Terminal::WrongEdge(peer)
        });
    }
    Ok(State {
        node: peer,
        in_port: topo.link(link).port_on(peer),
        deflected,
    })
}

/// Exhaustively classifies one encoded route under one failure set.
///
/// `src`/`dst` are the ingress and destination edges; the packet enters
/// the core through `route.uplink` exactly as the edge logic would send
/// it.
pub fn verify_route(
    topo: &Topology,
    route: &EncodedRoute,
    src: NodeId,
    dst: NodeId,
    technique: DeflectionTechnique,
    failed: &HashSet<LinkId>,
) -> VerifyReport {
    let mut report = VerifyReport {
        outcome: Outcome::Delivered,
        can_deliver: false,
        can_wrong_edge: false,
        can_blackhole: false,
        has_cycle: false,
        states: 0,
        loop_witness: None,
        blackhole_witness: None,
        relevant_links: Vec::new(),
    };
    // The edge transmits blindly into its uplink; a failed uplink kills
    // every packet of the flow at hop zero.
    let uplink = topo.node(src).ports[route.uplink as usize];
    if failed.contains(&uplink) {
        report.can_blackhole = true;
        report.outcome = Outcome::Blackhole;
        report.blackhole_witness = Some(vec![src]);
        report.relevant_links = vec![uplink];
        return report;
    }
    let first = topo.link(uplink).peer_of(src);
    debug_assert!(
        topo.switch_id(first).is_some(),
        "uplink peer is a core switch"
    );
    let initial = State {
        node: first,
        in_port: topo.link(uplink).port_on(first),
        deflected: false,
    };

    // Reachability sweep, recording the move relation and a predecessor
    // per state for witness reconstruction.
    let mut index: HashMap<State, usize> = HashMap::new();
    let mut states: Vec<State> = Vec::new();
    let mut succs: Vec<Vec<usize>> = Vec::new();
    let mut terminal_drop: Vec<bool> = Vec::new();
    let mut escapes: Vec<bool> = Vec::new(); // has an edge to a terminal
    let mut pred: Vec<Option<usize>> = Vec::new();
    let mut queue = VecDeque::new();
    index.insert(initial, 0);
    states.push(initial);
    succs.push(Vec::new());
    terminal_drop.push(false);
    escapes.push(false);
    pred.push(None);
    queue.push_back(0usize);
    while let Some(i) = queue.pop_front() {
        let state = states[i];
        match possible_moves(topo, route, technique, failed, state) {
            Err(Terminal::Drop) => {
                terminal_drop[i] = true;
                report.can_blackhole = true;
            }
            Err(_) => unreachable!("possible_moves only yields Drop terminals"),
            Ok(moves) => {
                for (port, deflected) in moves {
                    match step(topo, dst, state.node, port, deflected) {
                        Err(Terminal::Delivered) => {
                            report.can_deliver = true;
                            escapes[i] = true;
                        }
                        Err(Terminal::WrongEdge(_)) => {
                            report.can_wrong_edge = true;
                            escapes[i] = true;
                        }
                        Err(Terminal::Drop) => unreachable!("step never drops"),
                        Ok(next) => {
                            let j = *index.entry(next).or_insert_with(|| {
                                states.push(next);
                                succs.push(Vec::new());
                                terminal_drop.push(false);
                                escapes.push(false);
                                pred.push(Some(i));
                                queue.push_back(states.len() - 1);
                                states.len() - 1
                            });
                            if !succs[i].contains(&j) {
                                succs[i].push(j);
                            }
                        }
                    }
                }
            }
        }
    }
    report.states = states.len();

    // Everything the exploration consulted: `possible_moves` reads the
    // status of every port of the current switch, and `step` follows a
    // port of that same switch — so the uplink plus the full port list
    // of each reachable switch covers every status read.
    let mut relevant: HashSet<LinkId> = [uplink].into_iter().collect();
    let mut seen_nodes: HashSet<NodeId> = HashSet::new();
    for state in &states {
        if seen_nodes.insert(state.node) {
            relevant.extend(topo.node(state.node).ports.iter().copied());
        }
    }
    report.relevant_links = relevant.into_iter().collect();
    report.relevant_links.sort_unstable();

    if report.can_blackhole && report.blackhole_witness.is_none() {
        let die = (0..states.len())
            .find(|&i| terminal_drop[i])
            .expect("drop state exists");
        let mut path = Vec::new();
        let mut cur = Some(die);
        while let Some(i) = cur {
            path.push(states[i].node);
            cur = pred[i];
        }
        path.push(src);
        path.reverse();
        report.blackhole_witness = Some(path);
    }

    // Cycle and trap analysis on the inter-state relation. An SCC is a
    // trap when no member can drop (that would be a blackhole, reported
    // above), escape to an edge, or step outside the SCC.
    let sccs = tarjan_sccs(&succs);
    let mut scc_of = vec![0usize; states.len()];
    for (sid, scc) in sccs.iter().enumerate() {
        for &i in scc {
            scc_of[i] = sid;
        }
    }
    for (sid, scc) in sccs.iter().enumerate() {
        let cyclic = scc.len() > 1 || (scc.len() == 1 && succs[scc[0]].contains(&scc[0]));
        if !cyclic {
            continue;
        }
        report.has_cycle = true;
        let trapped = scc.iter().all(|&i| {
            !terminal_drop[i] && !escapes[i] && succs[i].iter().all(|&j| scc_of[j] == sid)
        });
        if trapped && report.loop_witness.is_none() {
            report.loop_witness = Some(loop_witness(&states, &succs, scc));
        }
    }

    report.outcome = if report.loop_witness.is_some() {
        Outcome::Loop
    } else if report.can_blackhole {
        Outcome::Blackhole
    } else if report.has_cycle {
        Outcome::TtlExceeded
    } else if report.can_wrong_edge {
        Outcome::WrongEdge
    } else {
        debug_assert!(report.can_deliver, "acyclic, lossless, on-target graph");
        Outcome::Delivered
    };
    report
}

/// One concrete cycle through a trap SCC, as the switches visited.
fn loop_witness(states: &[State], succs: &[Vec<usize>], scc: &[usize]) -> Vec<NodeId> {
    let members: HashSet<usize> = scc.iter().copied().collect();
    let start = scc[0];
    let mut seen = HashMap::new();
    let mut order = Vec::new();
    let mut cur = start;
    loop {
        if let Some(&at) = seen.get(&cur) {
            return order[at..]
                .iter()
                .map(|&i: &usize| states[i].node)
                .collect();
        }
        seen.insert(cur, order.len());
        order.push(cur);
        cur = *succs[cur]
            .iter()
            .find(|j| members.contains(j))
            .expect("trap SCC members stay inside the SCC");
    }
}

/// Iterative Tarjan strongly-connected components (indices into the
/// state arrays). Iterative because NIP walks on larger topologies can
/// produce graphs deeper than the default stack would like.
pub(crate) fn tarjan_sccs(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succs.len();
    let mut idx = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut sccs = Vec::new();
    let mut counter = 0usize;
    // (node, next successor position)
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if idx[root] != usize::MAX {
            continue;
        }
        call.push((root, 0));
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                idx[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succs[v].get(*pos) {
                *pos += 1;
                if idx[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(idx[w]);
                }
            } else {
                if low[v] == idx[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    sccs
}

/// Lexicographic k-subsets of `0..n`.
struct Combinations {
    n: usize,
    k: usize,
    cur: Vec<usize>,
    started: bool,
}

impl Combinations {
    fn new(n: usize, k: usize) -> Self {
        Combinations {
            n,
            k,
            cur: (0..k).collect(),
            started: false,
        }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;
    fn next(&mut self) -> Option<Vec<usize>> {
        if self.k > self.n {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(self.cur.clone());
        }
        let k = self.k;
        let mut i = k;
        while i > 0 {
            i -= 1;
            // Largest value position i can hold is n - k + i.
            if self.cur[i] < self.n - k + i {
                self.cur[i] += 1;
                for j in i + 1..k {
                    self.cur[j] = self.cur[j - 1] + 1;
                }
                return Some(self.cur.clone());
            }
        }
        None
    }
}

/// Memoizing classifier for one `(src, dst, route, technique)`: answers
/// [`verify_route`] queries for arbitrary failure sets by projecting
/// them onto the links the exploration actually consults.
///
/// Soundness: for a projection `P ⊆ F`, if no link of `F \ P` is in
/// [`VerifyReport::relevant_links`] of the exploration under `P`, the
/// exploration under `F` reads exactly the same statuses and is
/// byte-identical — outcome, state count and witnesses included.
/// [`PairVerifier::classify`] grows the projection to that fixpoint
/// (at most `|F|` rounds) and memoizes reports per projection, so a
/// k-failure sweep runs only as many state-graph searches as there are
/// *distinct* projections, not `C(links, k)`.
pub struct PairVerifier<'a> {
    topo: &'a Topology,
    route: EncodedRoute,
    src: NodeId,
    dst: NodeId,
    technique: DeflectionTechnique,
    memo: HashMap<Vec<LinkId>, VerifyReport>,
    /// Full state-graph explorations run so far.
    pub explored: usize,
    /// `classify` calls answered entirely from the memo.
    pub memo_hits: usize,
}

impl<'a> PairVerifier<'a> {
    /// A verifier for one pair and one encoded route.
    pub fn new(
        topo: &'a Topology,
        route: EncodedRoute,
        src: NodeId,
        dst: NodeId,
        technique: DeflectionTechnique,
    ) -> Self {
        PairVerifier {
            topo,
            route,
            src,
            dst,
            technique,
            memo: HashMap::new(),
            explored: 0,
            memo_hits: 0,
        }
    }

    /// The route this verifier explores.
    pub fn route(&self) -> &EncodedRoute {
        &self.route
    }

    /// Classifies one failure set, reusing memoized explorations of
    /// every equivalent set. Returns exactly what
    /// [`verify_route`] would.
    pub fn classify(&mut self, failed: &[LinkId]) -> VerifyReport {
        let mut proj: Vec<LinkId> = Vec::new();
        let mut ran = false;
        loop {
            if !self.memo.contains_key(&proj) {
                let set: HashSet<LinkId> = proj.iter().copied().collect();
                let report = verify_route(
                    self.topo,
                    &self.route,
                    self.src,
                    self.dst,
                    self.technique,
                    &set,
                );
                self.explored += 1;
                ran = true;
                self.memo.insert(proj.clone(), report);
            }
            let report = &self.memo[&proj];
            let extra: Vec<LinkId> = failed
                .iter()
                .copied()
                .filter(|l| !proj.contains(l) && report.relevant_links.binary_search(l).is_ok())
                .collect();
            if extra.is_empty() {
                if !ran {
                    self.memo_hits += 1;
                }
                return self.memo[&proj].clone();
            }
            proj.extend(extra);
            proj.sort_unstable();
        }
    }
}

/// One entry of a [`verify_failure_sets`] sweep.
#[derive(Debug, Clone)]
pub struct FailureSetResult {
    /// Ingress edge.
    pub src: NodeId,
    /// Destination edge.
    pub dst: NodeId,
    /// The simultaneously failed links, ascending.
    pub failed: Vec<LinkId>,
    /// `true` when the set physically disconnects `src` from `dst`.
    pub disconnected: bool,
    /// The exhaustive classification.
    pub report: VerifyReport,
}

/// Work accounting for a k-failure sweep — how much the projection
/// memo, monotone disconnection pruning and symmetry reduction saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// `(pair, failure set)` cases classified.
    pub cases: usize,
    /// Full state-graph explorations actually run.
    pub explored: usize,
    /// Cases answered from a projection memo without exploring.
    pub memo_hits: usize,
    /// Disconnection verdicts concluded from a known failed subset
    /// (monotonicity), skipping the reachability search.
    pub disconnect_pruned: usize,
    /// Disconnection verdicts shared across a graph-automorphism orbit.
    pub symmetry_hits: usize,
}

/// A k-failure sweep over every ordered edge pair.
#[derive(Debug, Clone)]
pub struct KSweep {
    /// One entry per `(pair, failure set)` case, pairs in edge order,
    /// sets lexicographic.
    pub results: Vec<FailureSetResult>,
    /// What the sweep cost and what the prunings saved.
    pub stats: SweepStats,
}

/// Exhaustively verifies every ordered edge pair of `topo` against
/// every failure set of exactly `k` links, with shortest-path routes
/// under `protection`. `k = 1` reproduces [`verify_single_failures`]
/// case for case.
///
/// See the module docs for why this scales: projection memoization
/// (most sets are equivalent to a much smaller one), monotone
/// disconnection pruning seeded from the smaller set sizes, and orbit
/// sharing of disconnection verdicts on symmetric generated topologies.
///
/// # Errors
///
/// Propagates route-encoding errors ([`KarError`]); pairs unreachable
/// on the *intact* topology are skipped, not errors.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn verify_failure_sets(
    topo: &Topology,
    technique: DeflectionTechnique,
    protection: &Protection,
    cache: &EncodingCache,
    k: usize,
) -> Result<KSweep, KarError> {
    assert!(k >= 1, "a failure sweep needs at least one failure");
    let sym = Symmetry::of(topo);
    let mut stats = SweepStats::default();
    let mut results = Vec::new();
    // Canonical (src, dst, failure set) -> disconnected, shared across
    // pairs via automorphisms. Connectivity is automorphism-invariant;
    // outcomes are not (they depend on switch IDs), so only the
    // disconnection verdict is ever shared.
    let mut orbit_cache: HashMap<(NodeId, NodeId, Vec<LinkId>), bool> = HashMap::new();
    let edges = topo.edge_nodes();
    for &src in &edges {
        for &dst in &edges {
            if src == dst {
                continue;
            }
            let Some(primary) = paths::bfs_shortest_path(topo, src, dst) else {
                continue;
            };
            let route = cache.encode_with_protection(topo, primary, protection)?;
            let mut pv = PairVerifier::new(topo, route, src, dst, technique);
            // Minimal disconnecting sets of size < s, for the monotone
            // skip at size s. Sizes below k are swept only to seed this.
            let mut disconnecting: Vec<Vec<LinkId>> = Vec::new();
            for s in 1..=k {
                for combo in Combinations::new(topo.link_count(), s) {
                    let failed: Vec<LinkId> = combo.into_iter().map(LinkId).collect();
                    let by_subset = disconnecting
                        .iter()
                        .any(|d| d.iter().all(|l| failed.contains(l)));
                    let disconnected = if by_subset {
                        stats.disconnect_pruned += 1;
                        true
                    } else if !sym.is_trivial() {
                        let key = sym.canonical_case(topo, src, dst, &failed);
                        if let Some(&d) = orbit_cache.get(&key) {
                            stats.symmetry_hits += 1;
                            d
                        } else {
                            let set: HashSet<LinkId> = failed.iter().copied().collect();
                            let d = bfs_avoiding(topo, src, dst, &set).is_none();
                            orbit_cache.insert(key, d);
                            d
                        }
                    } else {
                        let set: HashSet<LinkId> = failed.iter().copied().collect();
                        bfs_avoiding(topo, src, dst, &set).is_none()
                    };
                    if disconnected && !by_subset && s < k {
                        disconnecting.push(failed.clone());
                    }
                    if s == k {
                        let report = pv.classify(&failed);
                        stats.cases += 1;
                        results.push(FailureSetResult {
                            src,
                            dst,
                            failed,
                            disconnected,
                            report,
                        });
                    }
                }
            }
            stats.explored += pv.explored;
            stats.memo_hits += pv.memo_hits;
        }
    }
    Ok(KSweep { results, stats })
}

/// A breaking point found by [`min_failure_set`]: the smallest failure
/// set that defeats the scheme for one pair.
#[derive(Debug, Clone)]
pub struct BreakingPoint {
    /// The failed links, ascending — lexicographically first among the
    /// minimum-size sets that break the pair.
    pub failed: Vec<LinkId>,
    /// [`Outcome::Blackhole`] or [`Outcome::Loop`].
    pub outcome: Outcome,
    /// The full classification, witnesses included.
    pub report: VerifyReport,
}

/// Breaking-point search: the smallest failure set (ties broken
/// lexicographically) that blackholes or loops traffic from `src` to
/// `dst` *without* physically disconnecting the pair, searching sizes
/// `1..=max_k`.
///
/// Disconnecting sets are not violations — no scheme can deliver across
/// a cut — and by monotonicity no superset of one is ever a breaking
/// point of interest, so both are skipped without classification.
///
/// Returns `None` when the pair is unreachable on the intact topology
/// or survives every failure set up to `max_k`.
///
/// # Errors
///
/// Propagates route-encoding errors ([`KarError`]).
pub fn min_failure_set(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    technique: DeflectionTechnique,
    protection: &Protection,
    cache: &EncodingCache,
    max_k: usize,
) -> Result<Option<BreakingPoint>, KarError> {
    let Some(primary) = paths::bfs_shortest_path(topo, src, dst) else {
        return Ok(None);
    };
    let route = cache.encode_with_protection(topo, primary, protection)?;
    let mut pv = PairVerifier::new(topo, route, src, dst, technique);
    let mut disconnecting: Vec<Vec<LinkId>> = Vec::new();
    for s in 1..=max_k {
        for combo in Combinations::new(topo.link_count(), s) {
            let failed: Vec<LinkId> = combo.into_iter().map(LinkId).collect();
            if disconnecting
                .iter()
                .any(|d| d.iter().all(|l| failed.contains(l)))
            {
                continue; // superset of a cut: disconnected, not a violation
            }
            let set: HashSet<LinkId> = failed.iter().copied().collect();
            if bfs_avoiding(topo, src, dst, &set).is_none() {
                disconnecting.push(failed);
                continue;
            }
            let report = pv.classify(&failed);
            if matches!(report.outcome, Outcome::Blackhole | Outcome::Loop) {
                return Ok(Some(BreakingPoint {
                    failed,
                    outcome: report.outcome,
                    report,
                }));
            }
        }
    }
    Ok(None)
}

/// How a traced packet journey ended, for [`check_trajectory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectoryEnd {
    /// Delivered at the destination edge.
    Delivered,
    /// Surfaced at a non-destination edge (the path's last node).
    WrongEdge,
    /// The forwarder dropped it with no healthy way out — the
    /// blackhole class (`NoRoute`/`PortDown`/`ResidueOutOfRange`).
    ForcedDrop,
    /// The hop budget ran out mid-walk.
    TtlExpired,
    /// The recording stopped mid-flight; the prefix must still be a
    /// valid trajectory but proves nothing about how it would end.
    Truncated,
}

/// Checks that a traced forwarder path is a trajectory of the
/// verifier's move relation under `failed`, packet for packet.
///
/// `path` is the node sequence as the simulator's tracer records it,
/// starting at the ingress edge `src`. The deflected flag and input
/// port are not in the trace, so the check runs the move relation as an
/// NFA: it keeps every `(switch, in-port, deflected)` state consistent
/// with the observed prefix and demands at least one of them explains
/// each next hop — and, at the end, the claimed fate.
///
/// This is the bridge the differential tests stand on: any divergence
/// between `KarForwarder` and [`verify_route`]'s `possible_moves`
/// surfaces here as an inexplicable hop.
#[allow(clippy::too_many_arguments)] // mirrors verify_route's surface plus the observed path
pub fn check_trajectory(
    topo: &Topology,
    route: &EncodedRoute,
    src: NodeId,
    dst: NodeId,
    technique: DeflectionTechnique,
    failed: &HashSet<LinkId>,
    path: &[NodeId],
    end: TrajectoryEnd,
) -> Result<(), String> {
    if path.first() != Some(&src) {
        return Err(format!("path must start at src {src:?}, got {path:?}"));
    }
    let uplink = topo.node(src).ports[route.uplink as usize];
    if failed.contains(&uplink) {
        // The edge transmits blindly into its dead uplink: the packet
        // dies on hop zero, whatever the technique.
        return if path.len() == 1
            && matches!(end, TrajectoryEnd::ForcedDrop | TrajectoryEnd::Truncated)
        {
            Ok(())
        } else {
            Err(format!(
                "uplink is failed: expected a hop-zero drop, got {path:?} ending {end:?}"
            ))
        };
    }
    if path.len() == 1 {
        return if end == TrajectoryEnd::Truncated {
            Ok(())
        } else {
            Err(format!("one-node path cannot end {end:?}"))
        };
    }
    let first = topo.link(uplink).peer_of(src);
    if path[1] != first {
        return Err(format!(
            "first hop must follow the uplink to {first:?}, got {:?}",
            path[1]
        ));
    }
    let frontier = vec![State {
        node: first,
        in_port: topo.link(uplink).port_on(first),
        deflected: false,
    }];
    walk_frontier(topo, route, dst, technique, failed, frontier, path, 2, end)
}

/// Checks a traced path *suffix* beginning at a core switch against the
/// move relation, from an explicit starting state.
///
/// [`check_trajectory`] always enters the network through `route`'s
/// ingress uplink; this variant instead seeds the NFA at `path[0]` (a
/// core switch) with the given input port and deflection flag. It
/// exists for the Byzantine fixtures: a misforwarding switch pushes a
/// packet out a port the honest algorithm never chose, and the claim to
/// verify is that the *rest* of the journey still satisfies the move
/// relation from that wrong ingress state — honest switches stay honest
/// even on adversarially delivered inputs.
#[allow(clippy::too_many_arguments)] // mirrors check_trajectory's surface
pub fn check_trajectory_from(
    topo: &Topology,
    route: &EncodedRoute,
    dst: NodeId,
    technique: DeflectionTechnique,
    failed: &HashSet<LinkId>,
    in_port: PortIx,
    deflected: bool,
    path: &[NodeId],
    end: TrajectoryEnd,
) -> Result<(), String> {
    let Some(&start) = path.first() else {
        return Err("suffix path must contain its starting switch".into());
    };
    if topo.switch_id(start).is_none() {
        return Err(format!("suffix must start at a core switch, got {start:?}"));
    }
    if (in_port as usize) >= topo.node(start).ports.len() {
        return Err(format!(
            "in_port {in_port} out of range at {start:?} ({} ports)",
            topo.node(start).ports.len()
        ));
    }
    let frontier = vec![State {
        node: start,
        in_port,
        deflected,
    }];
    walk_frontier(topo, route, dst, technique, failed, frontier, path, 1, end)
}

/// The shared NFA walk: advances `frontier` along `path[skip..]`,
/// demanding every observed hop (and the claimed end) is explained by
/// at least one consistent `(switch, in-port, deflected)` state.
#[allow(clippy::too_many_arguments)]
fn walk_frontier(
    topo: &Topology,
    route: &EncodedRoute,
    dst: NodeId,
    technique: DeflectionTechnique,
    failed: &HashSet<LinkId>,
    mut frontier: Vec<State>,
    path: &[NodeId],
    skip: usize,
    end: TrajectoryEnd,
) -> Result<(), String> {
    let mut terminal: Option<Terminal> = None;
    for (i, &next) in path.iter().enumerate().skip(skip) {
        if terminal.is_some() {
            return Err(format!("path continues past an edge at hop {}", i - 1));
        }
        let next_is_core = topo.switch_id(next).is_some();
        let mut new_frontier: Vec<State> = Vec::new();
        let mut reached_terminal = None;
        for &s in &frontier {
            let Ok(moves) = possible_moves(topo, route, technique, failed, s) else {
                continue;
            };
            for (port, deflected) in moves {
                match step(topo, dst, s.node, port, deflected) {
                    Ok(ns) => {
                        if next_is_core && ns.node == next && !new_frontier.contains(&ns) {
                            new_frontier.push(ns);
                        }
                    }
                    Err(t @ (Terminal::Delivered | Terminal::WrongEdge(_))) => {
                        let lands = match t {
                            Terminal::Delivered => dst,
                            Terminal::WrongEdge(e) => e,
                            Terminal::Drop => unreachable!(),
                        };
                        if !next_is_core && lands == next {
                            reached_terminal = Some(t);
                        }
                    }
                    Err(Terminal::Drop) => unreachable!("step never drops"),
                }
            }
        }
        if next_is_core {
            if new_frontier.is_empty() {
                return Err(format!(
                    "no move of {technique} explains hop {:?} -> {next:?} (index {i})",
                    path[i - 1]
                ));
            }
            frontier = new_frontier;
        } else {
            let Some(t) = reached_terminal else {
                return Err(format!(
                    "no move of {technique} surfaces at edge {next:?} (index {i})"
                ));
            };
            terminal = Some(t);
        }
    }
    match end {
        TrajectoryEnd::Delivered => match terminal {
            Some(Terminal::Delivered) => Ok(()),
            _ => Err(format!("claimed delivered, path ends {:?}", path.last())),
        },
        TrajectoryEnd::WrongEdge => match terminal {
            Some(Terminal::WrongEdge(_)) => Ok(()),
            _ => Err(format!("claimed wrong-edge, path ends {:?}", path.last())),
        },
        TrajectoryEnd::ForcedDrop => {
            if terminal.is_some() {
                return Err("claimed a forced drop but the path ends at an edge".into());
            }
            if frontier
                .iter()
                .any(|&s| possible_moves(topo, route, technique, failed, s).is_err())
            {
                Ok(())
            } else {
                Err(format!(
                    "claimed a forced drop at {:?} but every consistent state can move",
                    path.last()
                ))
            }
        }
        TrajectoryEnd::TtlExpired | TrajectoryEnd::Truncated => {
            if terminal.is_some() {
                Err(format!("claimed {end:?} but the path ends at an edge"))
            } else {
                Ok(())
            }
        }
    }
}

/// One entry of a [`verify_single_failures`] sweep.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Ingress edge.
    pub src: NodeId,
    /// Destination edge.
    pub dst: NodeId,
    /// The single failed link.
    pub failed: LinkId,
    /// `true` when the failure physically disconnects `src` from `dst` —
    /// no scheme can deliver; not counted as a resilience violation.
    pub disconnected: bool,
    /// The exhaustive classification.
    pub report: VerifyReport,
}

/// Exhaustively verifies every ordered edge pair of `topo` against every
/// single-link failure (the k=1 sweep), with shortest-path routes under
/// `protection`.
///
/// # Errors
///
/// Propagates route-encoding errors ([`KarError`]); unreachable pairs on
/// the *intact* topology are skipped, not errors.
pub fn verify_single_failures(
    topo: &Topology,
    technique: DeflectionTechnique,
    protection: &Protection,
    cache: &EncodingCache,
) -> Result<Vec<CaseResult>, KarError> {
    let sweep = verify_failure_sets(topo, technique, protection, cache, 1)?;
    Ok(sweep
        .results
        .into_iter()
        .map(|r| CaseResult {
            src: r.src,
            dst: r.dst,
            failed: r.failed[0],
            disconnected: r.disconnected,
            report: r.report,
        })
        .collect())
}

/// Aggregate view of a sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifySummary {
    /// Cases verified.
    pub total: usize,
    /// Count per outcome, in [`Outcome`] order (delivered, wrong-edge,
    /// ttl-exceeded, blackhole, loop).
    pub by_outcome: [usize; 5],
    /// Cases where the failure disconnected the pair.
    pub disconnected: usize,
    /// Connected cases classified blackhole or loop — the failures the
    /// scheme does not survive.
    pub violations: usize,
}

impl VerifySummary {
    /// Count for one outcome — an array read, precomputed when the
    /// summary was folded; never a rescan of the result slice.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.by_outcome[outcome as usize]
    }

    /// Folds one case into the counts. A disconnected case is never a
    /// violation: no scheme can deliver across a physical cut.
    pub fn record(&mut self, outcome: Outcome, disconnected: bool) {
        self.total += 1;
        self.by_outcome[outcome as usize] += 1;
        if disconnected {
            self.disconnected += 1;
        } else if matches!(outcome, Outcome::Blackhole | Outcome::Loop) {
            self.violations += 1;
        }
    }
}

/// Folds sweep results into counts; `violations` are connected cases
/// that still black-hole or loop.
pub fn summarize(results: &[CaseResult]) -> VerifySummary {
    let mut s = VerifySummary::default();
    for case in results {
        s.record(case.report.outcome, case.disconnected);
    }
    s
}

/// [`summarize`] for a k-failure sweep.
pub fn summarize_sets(results: &[FailureSetResult]) -> VerifySummary {
    let mut s = VerifySummary::default();
    for case in results {
        s.record(case.report.outcome, case.disconnected);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflect::KarForwarder;
    use crate::route::RouteSpec;
    use kar_simnet::{ForwardDecision, Forwarder, Packet, RouteTag, SwitchCtx};
    use kar_topology::topo15;

    #[test]
    fn intact_primary_route_is_delivered() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let route = EncodedRoute::encode(&topo, &RouteSpec::unprotected(primary)).unwrap();
        let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
        for technique in DeflectionTechnique::ALL {
            let report = verify_route(&topo, &route, src, dst, technique, &HashSet::new());
            assert_eq!(report.outcome, Outcome::Delivered, "{technique}");
            assert_eq!(report.states, 4, "{technique}: one state per hop");
        }
    }

    #[test]
    fn no_deflection_blackholes_with_witness() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let route = EncodedRoute::encode(&topo, &RouteSpec::unprotected(primary)).unwrap();
        let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
        let failed: HashSet<LinkId> = [topo.expect_link("SW7", "SW13")].into_iter().collect();
        let report = verify_route(&topo, &route, src, dst, DeflectionTechnique::None, &failed);
        assert_eq!(report.outcome, Outcome::Blackhole);
        let witness = report.blackhole_witness.unwrap();
        assert_eq!(
            witness,
            vec![src, topo.expect("SW10"), topo.expect("SW7")],
            "dies at SW7, upstream of the failure"
        );
    }

    #[test]
    fn failed_uplink_is_an_immediate_blackhole() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let route = EncodedRoute::encode(&topo, &RouteSpec::unprotected(primary)).unwrap();
        let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
        let failed: HashSet<LinkId> = [topo.expect_link("AS1", "SW10")].into_iter().collect();
        for technique in DeflectionTechnique::ALL {
            let report = verify_route(&topo, &route, src, dst, technique, &failed);
            assert_eq!(report.outcome, Outcome::Blackhole, "{technique}");
            assert_eq!(report.blackhole_witness, Some(vec![src]));
        }
    }

    #[test]
    fn protected_nip_survives_all_paper_failures() {
        // The §3 scenario, proven instead of sampled: NIP + full
        // protection delivers every trajectory for each Fig. 4 failure.
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let cache = EncodingCache::new();
        let route = cache
            .encode_with_protection(&topo, primary, &Protection::AutoFull)
            .unwrap();
        let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
        for (a, b) in topo15::FAILURE_LOCATIONS {
            let failed: HashSet<LinkId> = [topo.expect_link(a, b)].into_iter().collect();
            let report = verify_route(&topo, &route, src, dst, DeflectionTechnique::Nip, &failed);
            assert!(
                report.outcome.is_lossless(),
                "{a}-{b}: {:?}",
                report.outcome
            );
            assert!(report.can_deliver);
        }
    }

    /// The verifier's move relation must match the sampled dataplane: at
    /// every reachable state the set of ports `KarForwarder` can emit
    /// over many RNG draws equals the verifier's `possible_moves`.
    #[test]
    fn moves_match_the_sampled_forwarder() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let cache = EncodingCache::new();
        let route = cache
            .encode_with_protection(&topo, primary, &Protection::AutoFull)
            .unwrap();
        let failed: HashSet<LinkId> = [topo.expect_link("SW7", "SW13")].into_iter().collect();
        let mut rng = StdRng::seed_from_u64(77);
        for technique in DeflectionTechnique::ALL {
            let mut fwd = KarForwarder::new(technique);
            for node in topo.core_nodes() {
                let ports = topo.node(node).ports.clone();
                let statuses: Vec<bool> = ports.iter().map(|l| !failed.contains(l)).collect();
                for in_port in 0..ports.len() as PortIx {
                    for deflected in [false, true] {
                        let state = State {
                            node,
                            in_port,
                            deflected,
                        };
                        let expected = possible_moves(&topo, &route, technique, &failed, state);
                        let mut sampled = HashSet::new();
                        let mut dropped = false;
                        for _ in 0..200 {
                            let mut tag = RouteTag::new(route.route_id.clone());
                            tag.deflected = deflected;
                            let mut pkt = Packet {
                                id: 0,
                                flow: kar_simnet::FlowId(0),
                                seq: 0,
                                kind: kar_simnet::PacketKind::Probe,
                                size_bytes: 64,
                                src: NodeId(0),
                                dst: NodeId(1),
                                route: Some(tag),
                                ttl: 64,
                                hops: 0,
                                deflections: 0,
                                created: kar_simnet::SimTime::ZERO,
                            };
                            let ctx = SwitchCtx {
                                topo: &topo,
                                node,
                                switch_id: topo.switch_id(node).unwrap(),
                                in_port: Some(in_port),
                                ports: &statuses,
                                now: kar_simnet::SimTime::ZERO,
                                reducer: None,
                                behavior: kar_simnet::Behavior::Honest,
                            };
                            match fwd.forward(&ctx, &mut pkt, &mut rng) {
                                ForwardDecision::Output(p) => {
                                    sampled.insert(p);
                                }
                                ForwardDecision::Drop(_) => dropped = true,
                            }
                        }
                        match expected {
                            Err(Terminal::Drop) => {
                                assert!(
                                    dropped && sampled.is_empty(),
                                    "{technique} at {node:?}/{in_port}/{deflected}"
                                );
                            }
                            Err(_) => unreachable!(),
                            Ok(moves) => {
                                let ports: HashSet<PortIx> =
                                    moves.iter().map(|&(p, _)| p).collect();
                                assert!(!dropped, "{technique} at {node:?}/{in_port}");
                                assert_eq!(
                                    sampled, ports,
                                    "{technique} at {node:?}/{in_port}/{deflected}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn combinations_enumerate_lexicographically() {
        let all: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
        assert_eq!(
            all,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(Combinations::new(5, 3).count(), 10);
        assert_eq!(Combinations::new(3, 4).count(), 0);
        assert_eq!(Combinations::new(3, 3).count(), 1);
    }

    /// The projection memo must be invisible: for a sample of 2-failure
    /// sets, `PairVerifier::classify` returns byte-identical reports to
    /// a fresh `verify_route` of the full set.
    #[test]
    fn projection_memo_agrees_with_direct_verification() {
        let topo = topo15::build();
        let cache = EncodingCache::new();
        let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
        let primary = paths::bfs_shortest_path(&topo, src, dst).unwrap();
        for technique in DeflectionTechnique::ALL {
            let route = cache
                .encode_with_protection(&topo, primary.clone(), &Protection::AutoFull)
                .unwrap();
            let mut pv = PairVerifier::new(&topo, route.clone(), src, dst, technique);
            for combo in Combinations::new(topo.link_count(), 2) {
                let failed: Vec<LinkId> = combo.into_iter().map(LinkId).collect();
                let set: HashSet<LinkId> = failed.iter().copied().collect();
                let direct = verify_route(&topo, &route, src, dst, technique, &set);
                let memoized = pv.classify(&failed);
                assert_eq!(memoized.outcome, direct.outcome, "{technique} {failed:?}");
                assert_eq!(memoized.states, direct.states, "{technique} {failed:?}");
                assert_eq!(
                    memoized.loop_witness, direct.loop_witness,
                    "{technique} {failed:?}"
                );
                assert_eq!(
                    memoized.blackhole_witness, direct.blackhole_witness,
                    "{technique} {failed:?}"
                );
                assert_eq!(
                    memoized.relevant_links, direct.relevant_links,
                    "{technique} {failed:?}"
                );
            }
            // The memo must save work: strictly fewer explorations than
            // cases (HP's random walk has the widest relevant sets and
            // the least sharing; NIP/None collapse far more).
            assert!(
                pv.explored < 231 && pv.memo_hits > 0,
                "{technique}: explored {}, hits {}",
                pv.explored,
                pv.memo_hits
            );
        }
    }

    #[test]
    fn k2_sweep_stats_account_for_every_case() {
        let topo = topo15::build();
        let cache = EncodingCache::new();
        let sweep = verify_failure_sets(
            &topo,
            DeflectionTechnique::Nip,
            &Protection::AutoFull,
            &cache,
            2,
        )
        .unwrap();
        // 6 ordered pairs × C(22, 2) sets.
        assert_eq!(sweep.results.len(), 6 * 231);
        assert_eq!(sweep.stats.cases, 6 * 231);
        // A classify call either ends on a memo hit or ran at least one
        // exploration, so hits + explorations bound the cases from
        // below; the memo must still collapse a strict majority.
        assert!(
            sweep.stats.explored + sweep.stats.memo_hits >= sweep.stats.cases,
            "{:?}",
            sweep.stats
        );
        assert!(
            sweep.stats.explored < sweep.results.len() / 2,
            "projection memo should collapse most cases: {:?}",
            sweep.stats
        );
        // Monotone pruning: every 2-set containing a pair's uplink is a
        // superset of a known disconnecting singleton.
        assert!(sweep.stats.disconnect_pruned > 0, "{:?}", sweep.stats);
        // k=1 compatibility: the engine is the one behind
        // verify_single_failures, whose pinned tables lock the k=1 view.
        let k1 = verify_failure_sets(
            &topo,
            DeflectionTechnique::Nip,
            &Protection::AutoFull,
            &cache,
            1,
        )
        .unwrap();
        assert_eq!(summarize_sets(&k1.results).total, 132);
    }

    #[test]
    fn min_failure_set_finds_the_unprotected_breaking_point() {
        let topo = topo15::build();
        let cache = EncodingCache::new();
        let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
        // No deflection, no protection: the first primary link failure
        // that does not disconnect the pair black-holes it — a k=1
        // breaking point, and lexicographically the smallest such link.
        let bp = min_failure_set(
            &topo,
            src,
            dst,
            DeflectionTechnique::None,
            &Protection::None,
            &cache,
            3,
        )
        .unwrap()
        .expect("no-deflection must break");
        assert_eq!(bp.failed.len(), 1);
        assert_eq!(bp.outcome, Outcome::Blackhole);
        // The witness is a real trajectory: replayable as a path.
        assert!(bp.report.blackhole_witness.is_some());
        // NIP + full protection survives every single failure (the
        // pinned table) — its breaking point, if any, needs k >= 2.
        let nip = min_failure_set(
            &topo,
            src,
            dst,
            DeflectionTechnique::Nip,
            &Protection::AutoFull,
            &cache,
            2,
        )
        .unwrap();
        if let Some(bp) = &nip {
            assert!(bp.failed.len() >= 2, "{:?}", bp.failed);
        }
    }

    /// Satellite check: `VerifySummary::count` reads precomputed
    /// counts; exercise `record` across every `Outcome` variant,
    /// connected and disconnected.
    #[test]
    fn summary_record_covers_every_outcome_variant() {
        let variants = [
            Outcome::Delivered,
            Outcome::WrongEdge,
            Outcome::TtlExceeded,
            Outcome::Blackhole,
            Outcome::Loop,
        ];
        let mut s = VerifySummary::default();
        for &outcome in &variants {
            s.record(outcome, false);
            s.record(outcome, true);
        }
        assert_eq!(s.total, 10);
        for &outcome in &variants {
            assert_eq!(s.count(outcome), 2, "{outcome}");
        }
        assert_eq!(s.disconnected, 5);
        // Only the connected blackhole and loop are violations; the
        // disconnected ones never are.
        assert_eq!(s.violations, 2);
        // count() must agree with a manual scan of by_outcome.
        for (i, &outcome) in variants.iter().enumerate() {
            assert_eq!(s.count(outcome), s.by_outcome[i]);
        }
    }

    #[test]
    fn check_trajectory_accepts_real_paths_and_rejects_fakes() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let route = EncodedRoute::encode(&topo, &RouteSpec::unprotected(primary)).unwrap();
        let (src, dst) = (topo.expect("AS1"), topo.expect("AS3"));
        let none: HashSet<LinkId> = HashSet::new();
        // The primary path itself, intact network.
        let path = vec![
            src,
            topo.expect("SW10"),
            topo.expect("SW7"),
            topo.expect("SW13"),
            topo.expect("SW29"),
            dst,
        ];
        for technique in DeflectionTechnique::ALL {
            check_trajectory(
                &topo,
                &route,
                src,
                dst,
                technique,
                &none,
                &path,
                TrajectoryEnd::Delivered,
            )
            .unwrap_or_else(|e| panic!("{technique}: {e}"));
        }
        // A hop the move relation cannot produce (off-route jump).
        let fake = vec![src, topo.expect("SW10"), topo.expect("SW43")];
        assert!(check_trajectory(
            &topo,
            &route,
            src,
            dst,
            DeflectionTechnique::None,
            &none,
            &fake,
            TrajectoryEnd::Truncated,
        )
        .is_err());
        // A forced drop upstream of a failure, no deflection.
        let failed: HashSet<LinkId> = [topo.expect_link("SW7", "SW13")].into_iter().collect();
        let dying = vec![src, topo.expect("SW10"), topo.expect("SW7")];
        check_trajectory(
            &topo,
            &route,
            src,
            dst,
            DeflectionTechnique::None,
            &failed,
            &dying,
            TrajectoryEnd::ForcedDrop,
        )
        .unwrap();
        // The same path cannot claim delivery.
        assert!(check_trajectory(
            &topo,
            &route,
            src,
            dst,
            DeflectionTechnique::None,
            &failed,
            &dying,
            TrajectoryEnd::Delivered,
        )
        .is_err());
        // Hop-zero death on a failed uplink.
        let cut: HashSet<LinkId> = [topo.expect_link("AS1", "SW10")].into_iter().collect();
        check_trajectory(
            &topo,
            &route,
            src,
            dst,
            DeflectionTechnique::Nip,
            &cut,
            &[src],
            TrajectoryEnd::ForcedDrop,
        )
        .unwrap();
    }

    #[test]
    fn summary_counts_and_violations() {
        let topo = topo15::build();
        let cache = EncodingCache::new();
        let results =
            verify_single_failures(&topo, DeflectionTechnique::None, &Protection::None, &cache)
                .unwrap();
        // 3 edges → 6 ordered pairs × 22 links.
        assert_eq!(results.len(), 6 * 22);
        let summary = summarize(&results);
        assert_eq!(summary.total, 132);
        // No-deflection blackholes exactly when one of its own primary
        // links fails — 28 primary links summed over the six pairs. The
        // 12 edge-uplink cuts among them also disconnect the pair, so
        // they are not counted as violations.
        assert_eq!(summary.count(Outcome::Blackhole), 28, "{summary:?}");
        assert_eq!(summary.violations, 16, "{summary:?}");
        assert_eq!(
            summary.disconnected, 12,
            "each pair is disconnected by exactly its two edge uplinks"
        );
        assert_eq!(summary.count(Outcome::Loop), 0);
    }

    /// The exhaustive topo15 classification, pinned per dataplane: every
    /// `(src, dst, single-link-failure)` case under auto-planned full
    /// protection. These are regression anchors — a forwarder or planner
    /// change that shifts any count must be reviewed against them.
    ///
    /// Notable facts the table proves:
    ///
    /// * **HP, AVP and NIP never lose a deliverable packet**: all 6
    ///   blackholes (and AVP/NIP's 6 loops) are edge-uplink cuts that
    ///   physically disconnect the pair — violations are 0.
    /// * **NIP dominates**: 120 delivered with no TTL-exceeded tail; HP
    ///   random-walks into 22 TTL-bounded wanderings, AVP into 10.
    /// * Without deflection, 16 survivable failures blackhole.
    #[test]
    fn exhaustive_topo15_classification_is_pinned() {
        let topo = topo15::build();
        let cache = EncodingCache::new();
        // (technique, delivered, ttl, blackhole, loop, violations)
        let expected = [
            (DeflectionTechnique::None, 104, 0, 28, 0, 16),
            (DeflectionTechnique::HotPotato, 104, 22, 6, 0, 0),
            (DeflectionTechnique::Avp, 110, 10, 6, 6, 0),
            (DeflectionTechnique::Nip, 120, 0, 6, 6, 0),
        ];
        for (technique, delivered, ttl, blackhole, looped, violations) in expected {
            let results =
                verify_single_failures(&topo, technique, &Protection::AutoFull, &cache).unwrap();
            let s = summarize(&results);
            assert_eq!(s.total, 132, "{technique}");
            assert_eq!(s.count(Outcome::Delivered), delivered, "{technique}: {s:?}");
            assert_eq!(s.count(Outcome::WrongEdge), 0, "{technique}: {s:?}");
            assert_eq!(s.count(Outcome::TtlExceeded), ttl, "{technique}: {s:?}");
            assert_eq!(s.count(Outcome::Blackhole), blackhole, "{technique}: {s:?}");
            assert_eq!(s.count(Outcome::Loop), looped, "{technique}: {s:?}");
            assert_eq!(s.disconnected, 12, "{technique}: {s:?}");
            assert_eq!(s.violations, violations, "{technique}: {s:?}");
            // The resilience guarantee, stated directly: every connected
            // case under a deflecting dataplane ends lossless or
            // TTL-bounded — never a blackhole, never a loop.
            if technique != DeflectionTechnique::None {
                for case in results.iter().filter(|c| !c.disconnected) {
                    assert!(
                        !matches!(case.report.outcome, Outcome::Blackhole | Outcome::Loop),
                        "{technique}: {:?} -> {:?} failing {:?}: {:?}",
                        case.src,
                        case.dst,
                        case.failed,
                        case.report.outcome
                    );
                }
            }
        }
    }
}
