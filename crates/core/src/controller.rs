//! The KAR network controller and edge logic.
//!
//! The paper's controller "knows the entire network topology, including
//! the Switch IDs … when a route is selected, it computes a Route ID"
//! (§2). Our [`Controller`] does exactly that: it selects primary paths
//! (shortest path, as in the paper's example), resolves the requested
//! [`Protection`] into driven-deflection segments, encodes route IDs, and
//! installs them at ingress edges. It also implements the paper's §2.1
//! wrong-edge handling: when a deflected packet surfaces at an edge that
//! is not its destination, the edge consults the controller, which
//! re-encodes a route from that edge to the destination (the paper's
//! "second approach", used in all their tests).
//!
//! Faithfulness note: during the paper's experiments "the controller
//! ignores all failure notifications and keeps the same route", so
//! re-encoding here uses the *intact* topology, not the failed one. Flip
//! [`Controller::set_failure_aware`] to study the alternative.

use crate::cache::EncodingCache;
use crate::deflect::DeflectionTechnique;
use crate::error::KarError;
use crate::protection::{encode_with_protection, Protection};
use crate::route::EncodedRoute;
use crate::wire::RouteHeader;
use kar_simnet::{EdgeLogic, Packet, RerouteDecision, RouteArena, RouteTag, SimTime};
use kar_topology::{paths, LinkId, NodeId, PortIx, Topology};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One route-encode request: the single public encode entry point,
/// shared by [`crate::KarNetwork`], [`crate::RecoveringController`],
/// the campaign engine and the `kar-service` daemon.
///
/// # Examples
///
/// ```
/// use kar::{EncodeRequest, Protection};
/// use kar_topology::topo15;
///
/// let topo = topo15::build();
/// let req = EncodeRequest::new(topo.expect("AS1"), topo.expect("AS3"))
///     .with_protection(Protection::AutoFull);
/// assert_eq!(req.protection, Protection::AutoFull);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeRequest {
    /// Ingress edge.
    pub src: NodeId,
    /// Egress edge.
    pub dst: NodeId,
    /// Protection level folded into the route ID.
    pub protection: Protection,
}

impl EncodeRequest {
    /// An unprotected encode request for `src → dst`.
    pub fn new(src: NodeId, dst: NodeId) -> EncodeRequest {
        EncodeRequest {
            src,
            dst,
            protection: Protection::None,
        }
    }

    /// Sets the protection level.
    pub fn with_protection(mut self, protection: Protection) -> EncodeRequest {
        self.protection = protection;
        self
    }
}

/// Everything one successful encode produced: the installed route and
/// the canonical wire header carrying its route ID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeOutcome {
    /// The CRT-encoded route (route ID, basis, port map, uplink).
    pub route: EncodedRoute,
    /// The §2.3 fixed-width header for the route ID — the exact bytes
    /// the dataplane carries (see [`crate::wire`]).
    pub header: RouteHeader,
}

impl EncodeOutcome {
    /// Builds the outcome for a freshly-encoded route.
    pub(crate) fn of(route: EncodedRoute) -> Result<EncodeOutcome, KarError> {
        let header = RouteHeader::for_route(&route)?;
        Ok(EncodeOutcome { route, header })
    }
}

/// What an edge does with a packet that surfaced at the wrong edge
/// (paper §2.1, final design remark).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReroutePolicy {
    /// Consult the controller: rewrite the route ID with a fresh path
    /// from this edge to the destination, paying a control-plane
    /// round-trip latency (the paper's second approach — used in all its
    /// tests).
    Recompute {
        /// Controller consultation latency.
        latency: SimTime,
    },
    /// Return the packet to the network unchanged (the paper's first
    /// approach).
    Bounce,
    /// Drop misdelivered packets.
    Drop,
}

impl Default for ReroutePolicy {
    fn default() -> Self {
        ReroutePolicy::Recompute {
            latency: SimTime::from_millis(2),
        }
    }
}

/// The KAR controller: route computation, protection planning, route-ID
/// encoding, and (as [`EdgeLogic`]) ingress/egress handling.
#[derive(Debug, Default)]
pub struct Controller {
    table: HashMap<(NodeId, NodeId), EncodedRoute>,
    reroute: ReroutePolicy,
    /// Links the controller believes are down (empty unless
    /// failure-aware — the paper's controller ignores failures).
    failed: HashSet<LinkId>,
    failure_aware: bool,
    /// Optional shared encoding memo; a cached encode is byte-identical
    /// to a fresh one, so this only affects speed.
    cache: Option<Arc<EncodingCache>>,
    /// Interns route IDs so every ingress tag for the same route shares
    /// one allocation (packet clones then only bump a refcount).
    arena: RouteArena,
}

impl Controller {
    /// Creates a controller with the default reroute policy.
    pub fn new() -> Self {
        Controller::default()
    }

    /// Sets the wrong-edge policy.
    pub fn with_reroute(mut self, policy: ReroutePolicy) -> Self {
        self.reroute = policy;
        self
    }

    /// Routes all route-ID computation through a shared
    /// [`EncodingCache`] (typically one per experiment sweep).
    pub fn with_encoding_cache(mut self, cache: Arc<EncodingCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Encodes via the shared cache when one is attached.
    fn encode_path(
        &self,
        topo: &Topology,
        primary: Vec<NodeId>,
        protection: &Protection,
    ) -> Result<EncodedRoute, KarError> {
        match &self.cache {
            Some(cache) => cache.encode_with_protection(topo, primary, protection),
            None => encode_with_protection(topo, primary, protection),
        }
    }

    /// When `true`, wrong-edge re-encoding avoids links marked failed via
    /// [`Controller::notify_failure`]. The paper's evaluation keeps this
    /// `false`.
    pub fn set_failure_aware(&mut self, aware: bool) {
        self.failure_aware = aware;
    }

    /// Records a failure notification (only consulted when
    /// failure-aware).
    pub fn notify_failure(&mut self, link: LinkId) {
        self.failed.insert(link);
    }

    /// Records a repair notification.
    pub fn notify_repair(&mut self, link: LinkId) {
        self.failed.remove(&link);
    }

    /// Number of installed ingress routes.
    pub fn installed_routes(&self) -> usize {
        self.table.len()
    }

    /// Forgets every installed and cached route. The recovery loop calls
    /// this when the known failure set changes: wrong-edge recomputations
    /// cached under the old failure set must not be served afterwards.
    pub fn clear_routes(&mut self) {
        self.table.clear();
        self.arena.clear();
    }

    /// The installed route for `(src, dst)`, if any.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<&EncodedRoute> {
        self.table.get(&(src, dst))
    }

    /// Computes the shortest path from `src` to `dst`, optionally
    /// avoiding failed links (failure-aware mode).
    fn select_path(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
    ) -> Result<Vec<NodeId>, KarError> {
        let path = if self.failure_aware && !self.failed.is_empty() {
            bfs_avoiding(topo, src, dst, &self.failed)
        } else {
            paths::bfs_shortest_path(topo, src, dst)
        };
        path.ok_or(KarError::NoPath { src, dst })
    }

    /// Serves one [`EncodeRequest`]: selects a shortest path, applies
    /// the requested protection, encodes and installs the route at the
    /// ingress edge, and returns it with its canonical wire header.
    ///
    /// # Errors
    ///
    /// [`KarError::NoPath`] when unreachable, plus any encoding error
    /// (see [`EncodedRoute::encode`]).
    pub fn encode(
        &mut self,
        topo: &Topology,
        req: &EncodeRequest,
    ) -> Result<EncodeOutcome, KarError> {
        let route = self.install_route(topo, req.src, req.dst, &req.protection)?;
        EncodeOutcome::of(route)
    }

    /// Selects a shortest path from `src` to `dst`, applies `protection`,
    /// encodes the route ID and installs it at the ingress edge.
    ///
    /// Lower-level positional form of [`Controller::encode`], kept for
    /// callers (the baseline stacks) that never need the wire header.
    ///
    /// # Errors
    ///
    /// [`KarError::NoPath`] when unreachable, plus any encoding error
    /// (see [`EncodedRoute::encode`]).
    pub fn install_route(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        protection: &Protection,
    ) -> Result<EncodedRoute, KarError> {
        let primary = self.select_path(topo, src, dst)?;
        let route = self.encode_path(topo, primary, protection)?;
        self.table.insert((src, dst), route.clone());
        Ok(route)
    }

    /// Installs an explicit primary path (the paper's scenarios pin their
    /// routes rather than recomputing them).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Controller::install_route`].
    pub fn install_explicit(
        &mut self,
        topo: &Topology,
        primary: Vec<NodeId>,
        protection: &Protection,
    ) -> Result<EncodedRoute, KarError> {
        let (src, dst) = (
            *primary.first().ok_or(KarError::NoPath {
                src: NodeId(0),
                dst: NodeId(0),
            })?,
            *primary.last().expect("non-empty checked above"),
        );
        let route = self.encode_path(topo, primary, protection)?;
        self.table.insert((src, dst), route.clone());
        Ok(route)
    }
}

/// BFS shortest path avoiding a set of links (also used by the verifier
/// to distinguish disconnections from routing failures).
pub(crate) fn bfs_avoiding(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    avoid: &HashSet<LinkId>,
) -> Option<Vec<NodeId>> {
    use std::collections::VecDeque;
    if src == dst {
        return Some(vec![src]);
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; topo.node_count()];
    let mut seen = vec![false; topo.node_count()];
    seen[src.0] = true;
    let mut q = VecDeque::from([src]);
    while let Some(n) = q.pop_front() {
        for (_, l, peer) in topo.neighbors(n) {
            if avoid.contains(&l) || seen[peer.0] {
                continue;
            }
            seen[peer.0] = true;
            prev[peer.0] = Some(n);
            if peer == dst {
                let mut path = vec![dst];
                let mut cur = dst;
                while cur != src {
                    cur = prev[cur.0].expect("predecessor chain intact");
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            q.push_back(peer);
        }
    }
    None
}

impl EdgeLogic for Controller {
    fn ingress(&mut self, _topo: &Topology, edge: NodeId, pkt: &mut Packet) -> Option<PortIx> {
        let route = self.table.get(&(edge, pkt.dst))?;
        // Stamp the tag from the canonical §2.3 header bytes — the same
        // bytes `kar-service` puts on the socket — so the simulated
        // dataplane consumes exactly the wire representation. Interning
        // is by value, so this shares allocations with value-stamped
        // tags and changes no route ID.
        let header = RouteHeader::for_route(route).expect("installed routes fit their own field");
        pkt.route = Some(RouteTag::new(self.arena.intern_wire(header.as_bytes())));
        Some(route.uplink)
    }

    fn reroute(&mut self, topo: &Topology, edge: NodeId, pkt: &mut Packet) -> RerouteDecision {
        match self.reroute {
            ReroutePolicy::Drop => RerouteDecision::Drop,
            ReroutePolicy::Bounce => {
                // Unchanged route ID, back out of the port it would use
                // as ingress (edges in our topologies have one uplink).
                RerouteDecision::Forward {
                    port: 0,
                    delay: SimTime::ZERO,
                }
            }
            ReroutePolicy::Recompute { latency } => {
                // The controller recalculates "based on the best path
                // from the edge node to the destination" — unprotected,
                // matching a reactive recomputation.
                let route = match self.table.get(&(edge, pkt.dst)) {
                    Some(r) => r.clone(),
                    None => {
                        let Ok(primary) = self.select_path(topo, edge, pkt.dst) else {
                            return RerouteDecision::Drop;
                        };
                        match self.encode_path(topo, primary, &Protection::None) {
                            Ok(r) => {
                                self.table.insert((edge, pkt.dst), r.clone());
                                r
                            }
                            Err(_) => return RerouteDecision::Drop,
                        }
                    }
                };
                let header =
                    RouteHeader::for_route(&route).expect("installed routes fit their own field");
                pkt.route = Some(RouteTag::new(self.arena.intern_wire(header.as_bytes())));
                RerouteDecision::Forward {
                    port: route.uplink,
                    delay: latency,
                }
            }
        }
    }
}

/// Bundles the knobs of one KAR deployment (used by experiment drivers).
#[derive(Debug, Clone)]
pub struct KarConfig {
    /// Deflection technique for every core switch.
    pub technique: DeflectionTechnique,
    /// Protection level for installed routes.
    pub protection: Protection,
    /// Wrong-edge policy.
    pub reroute: ReroutePolicy,
}

impl Default for KarConfig {
    fn default() -> Self {
        KarConfig {
            technique: DeflectionTechnique::Nip,
            protection: Protection::None,
            reroute: ReroutePolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_simnet::{FlowId, PacketKind};
    use kar_topology::topo15;

    fn probe(src: NodeId, dst: NodeId) -> Packet {
        Packet {
            id: 0,
            flow: FlowId(0),
            seq: 0,
            kind: PacketKind::Probe,
            size_bytes: 100,
            src,
            dst,
            route: None,
            ttl: 64,
            hops: 0,
            deflections: 0,
            created: SimTime::ZERO,
        }
    }

    #[test]
    fn install_and_ingress() {
        let topo = topo15::build();
        let mut c = Controller::new();
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let route = c.install_route(&topo, as1, as3, &Protection::None).unwrap();
        assert_eq!(route.bit_length(), 15);
        assert_eq!(c.installed_routes(), 1);
        assert_eq!(c.route(as1, as3), Some(&route));

        let mut pkt = probe(as1, as3);
        let port = c.ingress(&topo, as1, &mut pkt).unwrap();
        assert_eq!(port, route.uplink);
        assert_eq!(*pkt.route.as_ref().unwrap().route_id, route.route_id);
        // No route for the reverse direction.
        let mut back = probe(as3, as1);
        assert!(c.ingress(&topo, as3, &mut back).is_none());
    }

    #[test]
    fn encode_returns_route_and_matching_header() {
        let topo = topo15::build();
        let mut c = Controller::new();
        let req = EncodeRequest::new(topo.expect("AS1"), topo.expect("AS3"))
            .with_protection(Protection::AutoFull);
        let out = c.encode(&topo, &req).unwrap();
        assert_eq!(out.header.unpack(), out.route.route_id);
        assert_eq!(out.header.bits(), out.route.bit_length());
        assert_eq!(c.route(req.src, req.dst), Some(&out.route));
        // The ingress tag carries exactly the header's value.
        let mut pkt = probe(req.src, req.dst);
        c.ingress(&topo, req.src, &mut pkt).unwrap();
        assert_eq!(*pkt.route.unwrap().route_id, out.header.unpack());
    }

    #[test]
    fn install_explicit_pins_the_papers_route() {
        let topo = topo15::build();
        let mut c = Controller::new();
        let route = c
            .install_explicit(&topo, topo15::primary_route(&topo), &Protection::None)
            .unwrap();
        // BFS would find the same 4-switch route here; the explicit API
        // guarantees it regardless of tie-breaking.
        assert_eq!(
            route.pairs.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![10, 7, 13, 29]
        );
    }

    #[test]
    fn reroute_recomputes_from_wrong_edge() {
        let topo = topo15::build();
        let mut c = Controller::new();
        let as1 = topo.expect("AS1");
        let as2 = topo.expect("AS2");
        let as3 = topo.expect("AS3");
        c.install_route(&topo, as1, as3, &Protection::None).unwrap();
        // A deflected packet surfaces at AS2.
        let mut pkt = probe(as1, as3);
        match c.reroute(&topo, as2, &mut pkt) {
            RerouteDecision::Forward { port, delay } => {
                assert_eq!(port, 0); // AS2's single uplink
                assert_eq!(delay, SimTime::from_millis(2));
            }
            other => panic!("expected forward, got {other:?}"),
        }
        let tag = pkt.route.expect("rewritten tag");
        // The rewritten route must route AS2 → AS3: starting at SW23.
        let sw23 = 23;
        let port = tag.route_id.rem_u64(sw23);
        let sw23_node = topo.expect("SW23");
        let toward = topo
            .neighbors(sw23_node)
            .find(|&(p, _, _)| p == port)
            .map(|(_, _, peer)| peer);
        assert_eq!(toward, Some(topo.expect("SW17")));
        // The recomputed route is cached.
        assert!(c.route(as2, as3).is_some());
    }

    #[test]
    fn reroute_policies() {
        let topo = topo15::build();
        let as2 = topo.expect("AS2");
        let as3 = topo.expect("AS3");
        let mut bounce = Controller::new().with_reroute(ReroutePolicy::Bounce);
        let mut pkt = probe(topo.expect("AS1"), as3);
        pkt.route = Some(RouteTag::new(kar_rns::BigUint::from(99u64)));
        match bounce.reroute(&topo, as2, &mut pkt) {
            RerouteDecision::Forward { port: 0, delay } => assert_eq!(delay, SimTime::ZERO),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            *pkt.route.as_ref().unwrap().route_id,
            kar_rns::BigUint::from(99u64),
            "bounce must not rewrite the tag"
        );
        let mut drop = Controller::new().with_reroute(ReroutePolicy::Drop);
        assert_eq!(drop.reroute(&topo, as2, &mut pkt), RerouteDecision::Drop);
    }

    #[test]
    fn failure_aware_reroute_avoids_failed_links() {
        let topo = topo15::build();
        let mut c = Controller::new();
        c.set_failure_aware(true);
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        c.notify_failure(topo.expect_link("SW7", "SW13"));
        let route = c.install_route(&topo, as1, as3, &Protection::None).unwrap();
        // The primary route cannot use SW7-SW13 now.
        let ids: Vec<u64> = route.pairs.iter().map(|&(id, _)| id).collect();
        assert!(
            !(ids.windows(2).any(|w| w == [7, 13])),
            "route must avoid the failed link: {ids:?}"
        );
        c.notify_repair(topo.expect_link("SW7", "SW13"));
        let route2 = c.install_route(&topo, as1, as3, &Protection::None).unwrap();
        assert_eq!(
            route2.pairs.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![10, 7, 13, 29]
        );
    }

    #[test]
    fn cached_install_matches_uncached() {
        let topo = topo15::build();
        let cache = std::sync::Arc::new(crate::cache::EncodingCache::new());
        let as1 = topo.expect("AS1");
        let as3 = topo.expect("AS3");
        let mut plain = Controller::new();
        let expected = plain
            .install_route(&topo, as1, as3, &Protection::AutoFull)
            .unwrap();
        for _ in 0..3 {
            let mut cached = Controller::new().with_encoding_cache(cache.clone());
            let route = cached
                .install_route(&topo, as1, as3, &Protection::AutoFull)
                .unwrap();
            assert_eq!(route, expected);
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn no_path_is_an_error() {
        let topo = topo15::build();
        let mut c = Controller::new();
        c.set_failure_aware(true);
        let as1 = topo.expect("AS1");
        // Cut AS1 off entirely.
        c.notify_failure(topo.expect_link("AS1", "SW10"));
        let err = c
            .install_route(&topo, as1, topo.expect("AS3"), &Protection::None)
            .unwrap_err();
        assert!(matches!(err, KarError::NoPath { .. }));
    }
}
