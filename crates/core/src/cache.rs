//! Shared route-encoding cache.
//!
//! Encoding a route is two very different jobs glued together: walking
//! the topology to collect `(switch_id, port)` residue pairs (cheap), and
//! sealing those pairs into a route ID with CRT arithmetic over
//! big integers (the expensive half — see [`kar_rns::CrtCache`] for the
//! arithmetic-level counterpart). Experiment sweeps re-encode the same
//! routes for every repetition, so [`EncodingCache`] memoizes the sealing
//! step keyed by exactly the inputs that determine it: the residue pairs
//! plus the ingress uplink.
//!
//! Because an [`EncodedRoute`] is a pure function of that key — the
//! topology only matters for *collecting* the pairs — a hit is always
//! byte-identical to a recomputation: sharing one cache across runs,
//! sweeps, or worker threads can change speed, never results. The cache
//! is internally synchronized (`&self` methods), so experiment runners
//! share it between threads behind a plain `Arc`.

use crate::error::KarError;
use crate::protection::{resolve, Protection};
use crate::route::{EncodedRoute, RouteSpec};
use kar_topology::{NodeId, PortIx, Topology};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Hit/miss/size counters of an [`EncodingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the CRT arithmetic.
    pub misses: u64,
    /// Distinct routes stored.
    pub entries: usize,
}

/// A thread-safe memo table for [`EncodedRoute::from_pairs`].
///
/// # Examples
///
/// ```
/// use kar::{EncodingCache, Protection};
/// use kar_topology::topo15;
///
/// let topo = topo15::build();
/// let cache = EncodingCache::new();
/// let first = cache.encode_with_protection(
///     &topo, topo15::primary_route(&topo), &Protection::AutoFull)?;
/// let second = cache.encode_with_protection(
///     &topo, topo15::primary_route(&topo), &Protection::AutoFull)?;
/// assert_eq!(first, second);
/// assert_eq!(cache.stats().hits, 1);
/// # Ok::<(), kar::KarError>(())
/// ```
#[derive(Debug, Default)]
pub struct EncodingCache {
    routes: Mutex<HashMap<RouteKey, EncodedRoute>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The `(residue pairs, uplink)` pair that fully determines an
/// [`EncodedRoute`] — see [`EncodedRoute::collect_pairs`].
type RouteKey = (Vec<(u64, PortIx)>, PortIx);

impl EncodingCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        EncodingCache::default()
    }

    /// [`EncodedRoute::encode`] with the CRT-arithmetic half memoized.
    ///
    /// # Errors
    ///
    /// Exactly those of [`EncodedRoute::encode`]. Errors are not cached:
    /// spec validation happens in the collection half, before lookup.
    pub fn encode(&self, topo: &Topology, spec: &RouteSpec) -> Result<EncodedRoute, KarError> {
        let (pairs, uplink) = EncodedRoute::collect_pairs(topo, spec)?;
        let key = (pairs, uplink);
        if let Some(cached) = self.routes.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached.clone());
        }
        let route = EncodedRoute::from_pairs(key.0.clone(), key.1)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.routes
            .lock()
            .expect("cache lock")
            .insert(key, route.clone());
        Ok(route)
    }

    /// [`crate::protection::encode_with_protection`] backed by this cache.
    ///
    /// # Errors
    ///
    /// Same conditions as the uncached function.
    pub fn encode_with_protection(
        &self,
        topo: &Topology,
        primary: Vec<NodeId>,
        protection: &Protection,
    ) -> Result<EncodedRoute, KarError> {
        let segments = resolve(topo, &primary, protection);
        self.encode(topo, &RouteSpec::protected(primary, segments))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.routes.lock().expect("cache lock").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kar_topology::topo15;
    use std::sync::Arc;

    #[test]
    fn hit_equals_direct_encoding() {
        let topo = topo15::build();
        let cache = EncodingCache::new();
        let spec = RouteSpec::unprotected(topo15::primary_route(&topo));
        let direct = EncodedRoute::encode(&topo, &spec).unwrap();
        assert_eq!(cache.encode(&topo, &spec).unwrap(), direct);
        assert_eq!(cache.encode(&topo, &spec).unwrap(), direct);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn protection_levels_are_distinct_entries() {
        let topo = topo15::build();
        let cache = EncodingCache::new();
        let a = cache
            .encode_with_protection(&topo, topo15::primary_route(&topo), &Protection::None)
            .unwrap();
        let b = cache
            .encode_with_protection(&topo, topo15::primary_route(&topo), &Protection::AutoFull)
            .unwrap();
        assert_ne!(a.bit_length(), b.bit_length());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn invalid_specs_error_and_cache_nothing() {
        let topo = topo15::build();
        let cache = EncodingCache::new();
        let spec = RouteSpec::unprotected(vec![topo.expect("AS1")]);
        assert!(cache.encode(&topo, &spec).is_err());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn concurrent_lookups_agree() {
        let topo = topo15::build();
        let cache = Arc::new(EncodingCache::new());
        let spec = RouteSpec::unprotected(topo15::primary_route(&topo));
        let direct = EncodedRoute::encode(&topo, &spec).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        assert_eq!(cache.encode(&topo, &spec).unwrap(), direct);
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 200);
        assert_eq!(s.entries, 1);
        // Without an entry-creation lock two threads may race the first
        // miss; both compute the same pure value, so correctness holds.
        assert!(s.misses >= 1 && s.misses <= 4, "stats: {s:?}");
    }
}
