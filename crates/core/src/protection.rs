//! Automatic planning of driven-deflection forwarding paths.
//!
//! The paper composes protection paths by hand for its two scenarios.
//! This module generalizes the construction: given a primary path, build
//! the logical tree rooted at the destination (§2, "a logical tree with
//! its root at destination … has been built") that drives deflected
//! packets home, either completely ([`plan_full`]) or within a route-ID
//! bit budget ([`plan_with_budget`], the paper's §2.3 partial-protection
//! idea).

use crate::route::{EncodedRoute, RouteSpec};
use kar_rns::route_id_bit_length;
use kar_topology::{NodeId, Topology};
use std::collections::{HashMap, HashSet, VecDeque};

/// Protection level requested when installing a route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Protection {
    /// No protection segments.
    None,
    /// Explicit `(from_switch, towards)` segments (the paper's hand-built
    /// scenarios).
    Segments(Vec<(NodeId, NodeId)>),
    /// Cover every deflection candidate of every primary switch.
    AutoFull,
    /// Greedy coverage within a route-ID bit budget (loose protection,
    /// §2.3).
    AutoBudget {
        /// Maximum allowed `bit_length` of the resulting route ID.
        max_bits: u32,
    },
}

/// Breadth-first next-hop tree toward `root`, restricted to core switches
/// not in `forbidden` (plus `root` itself, which may be an edge).
fn tree_toward(
    topo: &Topology,
    root: NodeId,
    forbidden: &HashSet<NodeId>,
) -> HashMap<NodeId, NodeId> {
    let mut next: HashMap<NodeId, NodeId> = HashMap::new();
    let mut q = VecDeque::new();
    q.push_back(root);
    let mut seen: HashSet<NodeId> = [root].into_iter().collect();
    while let Some(n) = q.pop_front() {
        let mut peers: Vec<NodeId> = topo.neighbors(n).map(|(_, _, p)| p).collect();
        peers.sort();
        for peer in peers {
            if seen.contains(&peer) || forbidden.contains(&peer) {
                continue;
            }
            if topo.switch_id(peer).is_none() {
                continue; // edges do not forward
            }
            seen.insert(peer);
            next.insert(peer, n);
            q.push_back(peer);
        }
    }
    next
}

/// The deflection candidates a primary switch has when its downstream
/// primary link fails (NIP view: input and failed ports excluded; edge
/// hosts ignored).
fn candidates_of(topo: &Topology, primary: &[NodeId], idx: usize) -> Vec<NodeId> {
    let node = primary[idx];
    let input = if idx > 0 {
        Some(primary[idx - 1])
    } else {
        None
    };
    let failed_towards = primary.get(idx + 1).copied();
    topo.neighbors(node)
        .map(|(_, _, peer)| peer)
        .filter(|&peer| Some(peer) != input && Some(peer) != failed_towards)
        .filter(|&peer| topo.switch_id(peer).is_some())
        .collect()
}

/// Plans segments that drive *every* deflection candidate of every
/// primary-path switch to the destination — full protection.
///
/// The tree is built over core switches not on the primary path, so a
/// driven packet never re-enters the (possibly failed) primary route
/// before the destination. Candidates that cannot reach the destination
/// without the primary path are left uncovered (returned segments simply
/// do not include them).
pub fn plan_full(topo: &Topology, primary: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let dst_core = primary
        .iter()
        .rev()
        .find(|&&n| topo.switch_id(n).is_some())
        .copied()
        .expect("primary path must contain a core switch");
    let forbidden: HashSet<NodeId> = primary
        .iter()
        .copied()
        .filter(|&n| n != dst_core && topo.switch_id(n).is_some())
        .collect();
    let tree = tree_toward(topo, dst_core, &forbidden);
    let mut segments: Vec<(NodeId, NodeId)> = Vec::new();
    let mut included: HashSet<NodeId> = HashSet::new();
    let core_count = primary
        .iter()
        .filter(|&&n| topo.switch_id(n).is_some())
        .count();
    for idx in 0..core_count {
        // idx-th core on the path == position in `primary` among cores;
        // map back to primary indices.
        let (pidx, _) = primary
            .iter()
            .enumerate()
            .filter(|&(_, &n)| topo.switch_id(n).is_some())
            .nth(idx)
            .expect("core index in range");
        for cand in candidates_of(topo, primary, pidx) {
            // Walk the tree from the candidate to the destination, adding
            // each hop as a segment.
            let mut cur = cand;
            while cur != dst_core {
                if included.contains(&cur) {
                    break; // already wired toward the destination
                }
                let Some(&parent) = tree.get(&cur) else {
                    break; // unreachable without the primary path
                };
                segments.push((cur, parent));
                included.insert(cur);
                cur = parent;
            }
        }
    }
    segments
}

/// Plans segments greedily within a bit budget: candidate coverage paths
/// are added starting from the failures closest to the destination (their
/// detours are shortest and their protection matters most — exactly how
/// the paper's hand-built partial protection behaves), stopping before
/// the route ID would exceed `max_bits`.
///
/// Returns the planned segments; the result always encodes within
/// `max_bits` (it may be empty if even one segment would not fit).
pub fn plan_with_budget(
    topo: &Topology,
    primary: &[NodeId],
    max_bits: u32,
) -> Vec<(NodeId, NodeId)> {
    let full = plan_full(topo, primary);
    // Candidate order: plan_full pushes segments walking from candidates
    // of upstream-to-downstream switches; re-rank chains by proximity to
    // destination: later primary switches first.
    let mut base_ids: Vec<u64> = primary.iter().filter_map(|&n| topo.switch_id(n)).collect();
    let mut chosen: Vec<(NodeId, NodeId)> = Vec::new();
    // Group `full` into chains per starting candidate, preserving inner
    // order (each chain must be added atomically — half a chain strands
    // packets in un-encoded territory).
    let mut chains: Vec<Vec<(NodeId, NodeId)>> = Vec::new();
    let mut seen_start: HashSet<NodeId> = HashSet::new();
    let mut current: Vec<(NodeId, NodeId)> = Vec::new();
    for seg in &full {
        if seen_start.contains(&seg.0) {
            continue;
        }
        let continues = current
            .last()
            .map(|last: &(NodeId, NodeId)| last.1 == seg.0)
            .unwrap_or(false);
        if !continues && !current.is_empty() {
            chains.push(std::mem::take(&mut current));
        }
        seen_start.insert(seg.0);
        current.push(*seg);
    }
    if !current.is_empty() {
        chains.push(current);
    }
    // Shorter chains (closer to the destination) first.
    chains.sort_by_key(|c| c.len());
    for chain in chains {
        let mut trial_ids = base_ids.clone();
        for (from, _) in &chain {
            if let Some(id) = topo.switch_id(*from) {
                if !trial_ids.contains(&id) {
                    trial_ids.push(id);
                }
            }
        }
        if route_id_bit_length(&trial_ids) <= max_bits {
            for seg in &chain {
                if !chosen.contains(seg) {
                    chosen.push(*seg);
                }
            }
            base_ids = trial_ids;
        }
    }
    chosen
}

/// Resolves a [`Protection`] request into concrete segments for a primary
/// path.
pub fn resolve(
    topo: &Topology,
    primary: &[NodeId],
    protection: &Protection,
) -> Vec<(NodeId, NodeId)> {
    match protection {
        Protection::None => Vec::new(),
        Protection::Segments(segs) => segs.clone(),
        Protection::AutoFull => plan_full(topo, primary),
        Protection::AutoBudget { max_bits } => plan_with_budget(topo, primary, *max_bits),
    }
}

/// Convenience: encode a primary path with the given protection.
///
/// # Errors
///
/// Propagates [`crate::KarError`] from encoding (adjacency, conflicts,
/// coprimality).
pub fn encode_with_protection(
    topo: &Topology,
    primary: Vec<NodeId>,
    protection: &Protection,
) -> Result<EncodedRoute, crate::KarError> {
    let segments = resolve(topo, &primary, protection);
    EncodedRoute::encode(topo, &RouteSpec::protected(primary, segments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::failure_coverage;
    use kar_topology::{rnp28, topo15};

    #[test]
    fn auto_full_covers_all_topo15_failures() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let segments = plan_full(&topo, &primary);
        assert!(!segments.is_empty());
        let route = EncodedRoute::encode(
            &topo,
            &RouteSpec::protected(primary.clone(), segments.clone()),
        )
        .unwrap();
        let dst = topo.expect("AS3");
        for (a, b) in topo15::FAILURE_LOCATIONS {
            let cov = failure_coverage(&topo, &route, &primary, topo.expect_link(a, b), dst);
            assert_eq!(cov.fraction(), 1.0, "{a}-{b}: {cov:?}");
        }
    }

    #[test]
    fn auto_full_avoids_primary_switches_in_segments() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let primary_cores: HashSet<NodeId> = primary
            .iter()
            .copied()
            .filter(|&n| topo.switch_id(n).is_some())
            .collect();
        let dst_core = topo.expect("SW29");
        for (from, _) in plan_full(&topo, &primary) {
            assert!(
                !primary_cores.contains(&from) || from == dst_core,
                "segment must not re-route a primary switch"
            );
        }
    }

    #[test]
    fn auto_full_encodes_without_conflict() {
        let topo = rnp28::build();
        let primary: Vec<NodeId> = rnp28::FIG7_ROUTE.iter().map(|n| topo.expect(n)).collect();
        let route = encode_with_protection(&topo, primary, &Protection::AutoFull).unwrap();
        assert!(route.bit_length() > 0);
    }

    #[test]
    fn budget_limits_bit_length() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let full = encode_with_protection(&topo, primary.clone(), &Protection::AutoFull).unwrap();
        for budget in [15, 28, 43, full.bit_length()] {
            let route = encode_with_protection(
                &topo,
                primary.clone(),
                &Protection::AutoBudget { max_bits: budget },
            )
            .unwrap();
            assert!(
                route.bit_length() <= budget,
                "budget {budget} gave {} bits",
                route.bit_length()
            );
        }
    }

    #[test]
    fn budget_zero_extra_means_unprotected() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let route =
            encode_with_protection(&topo, primary, &Protection::AutoBudget { max_bits: 15 })
                .unwrap();
        assert_eq!(route.pairs.len(), 4);
        assert_eq!(route.bit_length(), 15);
    }

    #[test]
    fn budget_extremes_match_unprotected_and_full() {
        // Note: *total* coverage is not strictly monotone in the budget,
        // because re-encoding also changes the pseudo-random residues at
        // non-encoded switches (accidental drives can disappear). The
        // guaranteed properties are at the extremes.
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        let dst = topo.expect("AS3");
        // Tight budget: no protection segments fit.
        let tight = encode_with_protection(
            &topo,
            primary.clone(),
            &Protection::AutoBudget { max_bits: 15 },
        )
        .unwrap();
        assert_eq!(tight.pairs.len(), 4);
        // Generous budget: everything is covered, like AutoFull.
        let generous = encode_with_protection(
            &topo,
            primary.clone(),
            &Protection::AutoBudget { max_bits: 64 },
        )
        .unwrap();
        let total: f64 = topo15::FAILURE_LOCATIONS
            .iter()
            .map(|&(a, b)| {
                failure_coverage(&topo, &generous, &primary, topo.expect_link(a, b), dst).fraction()
            })
            .sum();
        assert!(
            (total - 3.0).abs() < 1e-9,
            "full coverage at 64 bits: {total}"
        );
        // Intermediate budgets cover at least the guaranteed (encoded)
        // candidates of the cheapest chains.
        let mid = encode_with_protection(&topo, primary, &Protection::AutoBudget { max_bits: 30 })
            .unwrap();
        assert!(mid.pairs.len() > 4 && mid.pairs.len() < generous.pairs.len());
    }

    #[test]
    fn resolve_dispatches() {
        let topo = topo15::build();
        let primary = topo15::primary_route(&topo);
        assert!(resolve(&topo, &primary, &Protection::None).is_empty());
        let sw11 = topo.expect("SW11");
        let sw19 = topo.expect("SW19");
        let explicit = Protection::Segments(vec![(sw11, sw19)]);
        assert_eq!(resolve(&topo, &primary, &explicit), vec![(sw11, sw19)]);
        assert!(!resolve(&topo, &primary, &Protection::AutoFull).is_empty());
    }
}
