//! Vendored offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace ships a small wall-clock benchmarking harness exposing the
//! `criterion 0.5` API subset its benches use: [`Criterion`],
//! [`criterion_group!`] / [`criterion_main!`], benchmark groups,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`Throughput`] and [`black_box`].
//!
//! Measurement model: a calibration pass sizes the iteration count to a
//! ~200 ms measurement window, then the median of several samples is
//! reported as ns/iter. No statistics, plots or HTML reports. Under
//! `cargo test` (no `--bench` argument) every benchmark body runs
//! exactly once as a smoke test, so `harness = false` bench targets
//! stay fast in test runs.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement window per benchmark, in measurement mode.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);
/// Samples taken per benchmark (median reported).
const SAMPLES: usize = 5;

/// Top-level benchmark driver.
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    /// Measurement mode when invoked by `cargo bench` (which passes
    /// `--bench`); smoke mode otherwise (e.g. under `cargo test`).
    fn default() -> Self {
        Criterion {
            measure: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.measure, None, &id.into(), None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration so a rate is reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; sampling here is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            self.criterion.measure,
            Some(&self.name),
            &id.into(),
            self.throughput.as_ref(),
            &mut f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            self.criterion.measure,
            Some(&self.name),
            &id,
            self.throughput.as_ref(),
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// A parameter value alone (the group name is the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility, the batch size here is always one.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Runs and times the benchmark body.
pub struct Bencher {
    measure: bool,
    /// Nanoseconds per iteration from the latest `iter*` call.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, excluding nothing (the whole closure is the routine).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.measure {
            black_box(f());
            self.ns_per_iter = 0.0;
            return;
        }
        // Calibrate the iteration count to the measurement window.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 30 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 8;
        };
        let window_iters =
            ((MEASURE_WINDOW.as_secs_f64() / SAMPLES as f64 / per_iter) as u64).max(1);
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..window_iters {
                    black_box(f());
                }
                t.elapsed().as_secs_f64() / window_iters as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[SAMPLES / 2] * 1e9;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if !self.measure {
            black_box(routine(setup()));
            self.ns_per_iter = 0.0;
            return;
        }
        // One timed run per sample: these routines are long (whole
        // simulations), so per-call timing is already stable.
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                t.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[SAMPLES / 2] * 1e9;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    measure: bool,
    group: Option<&str>,
    id: &BenchmarkId,
    throughput: Option<&Throughput>,
    f: &mut F,
) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    let mut bencher = Bencher {
        measure,
        ns_per_iter: 0.0,
    };
    f(&mut bencher);
    if !measure {
        println!("test {label} ... ok (smoke)");
        return;
    }
    let ns = bencher.ns_per_iter;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:.2} Melem/s", *n as f64 / ns * 1e3),
        Throughput::Bytes(n) => format!("  {:.2} MiB/s", *n as f64 / ns * 1e9 / (1 << 20) as f64),
    });
    println!(
        "bench {label:<55} {:>14}/iter{}",
        format_ns(ns),
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion { measure: false };
        let mut runs = 0u32;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { measure: false };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10)).sample_size(10);
        group.bench_function(BenchmarkId::from_parameter(4), |b| b.iter(|| 4 * 4));
        group.bench_with_input(BenchmarkId::new("bits", 16), &16u32, |b, &n| {
            b.iter_batched(|| n, |x| x + 1, BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn measurement_mode_times_real_work() {
        let mut b = Bencher {
            measure: true,
            ns_per_iter: 0.0,
        };
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i * i));
            }
            acc
        });
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
