//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace ships the minimal `rand 0.8` API subset it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, so streams differ from upstream, but
//! every property that matters here holds: seeding is deterministic,
//! state is per-instance (never global), and quality is far beyond what
//! the simulator's uniform draws need. No `OsRng`/`thread_rng` is
//! provided on purpose: all randomness in this workspace must flow from
//! an explicit seed.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]: {p}");
        // 53 uniform mantissa bits, the same resolution f64 offers.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (modulo_draw(rng, span)) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (modulo_draw(rng, span + 1)) as $t
            }
        }
    )+};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(modulo_draw(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(modulo_draw(rng, span + 1) as $t)
            }
        }
    )+};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by rejection, avoiding modulo bias.
fn modulo_draw<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64; rejecting above it
    // makes the modulo exactly uniform.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Seedable generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ state seeded
    /// via SplitMix64, per the xoshiro authors' recommendation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut x = state;
            let mut split = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [split(), split(), split(), split()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// In-place slice operations driven by an RNG.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 4,
            "streams should be uncorrelated, {same} collisions"
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let x: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
