//! Sampling helpers: [`Index`] and [`subsequence`].

use crate::arbitrary::{ArbStrategy, Arbitrary};
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length-independent index: a raw `usize` that [`Index::index`]
/// scales into `[0, len)` for any `len`, matching upstream semantics
/// (`Index(usize::MAX / 2)` lands near the middle of any slice).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(pub usize);

impl Index {
    /// Scales this value into `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        ((self.0 as u128 * len as u128) >> usize::BITS) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary() -> ArbStrategy<Index> {
        ArbStrategy::new(|rng| Index(rng.next_u64() as usize))
    }
}

/// Generates order-preserving subsequences of `values` whose lengths
/// fall in `size` (exclusive upper bound, clamped to the source length).
pub fn subsequence<T: Clone>(values: Vec<T>, size: Range<usize>) -> Subsequence<T> {
    assert!(
        size.start <= values.len(),
        "subsequence lower bound {} exceeds source length {}",
        size.start,
        values.len()
    );
    assert!(size.start < size.end, "empty subsequence size range");
    Subsequence { values, size }
}

/// See [`subsequence`].
pub struct Subsequence<T> {
    values: Vec<T>,
    size: Range<usize>,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let n = self.values.len();
        let hi = self.size.end.min(n + 1);
        let lo = self.size.start.min(hi - 1);
        let k = lo + rng.below((hi - lo) as u64) as usize;
        // Partial Fisher–Yates over the index space, then restore source
        // order so the result is a true subsequence.
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + rng.below((n - i) as u64) as usize;
            indices.swap(i, j);
        }
        let mut chosen: Vec<usize> = indices[..k].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.values[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_scales_full_range() {
        assert_eq!(Index(0).index(10), 0);
        assert_eq!(Index(usize::MAX / 2 + 1).index(10), 5);
        assert_eq!(Index(usize::MAX).index(10), 9);
    }

    #[test]
    fn subsequence_preserves_order_and_size() {
        let mut rng = TestRng::seed_from_u64(5);
        let source: Vec<u64> = (0..100).collect();
        let s = subsequence(source.clone(), 3..10);
        for _ in 0..200 {
            let sub = s.generate(&mut rng);
            assert!((3..10).contains(&sub.len()), "len {}", sub.len());
            assert!(sub.windows(2).all(|w| w[0] < w[1]), "order kept: {sub:?}");
            assert!(sub.iter().all(|v| source.contains(v)));
        }
    }

    #[test]
    fn subsequence_handles_tight_ranges() {
        let mut rng = TestRng::seed_from_u64(6);
        let s = subsequence(vec![1u64, 2, 3], 1..12);
        for _ in 0..50 {
            let sub = s.generate(&mut rng);
            assert!((1..=3).contains(&sub.len()));
        }
    }
}
