//! Case execution: configuration, RNG, and the run loop behind
//! [`proptest!`](crate::proptest).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// How many cases to run and how many `prop_assume!` rejections to
/// tolerate before giving up.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to execute.
    pub cases: u32,
    /// Total rejection budget across the whole test.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases with the default rejection budget.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — retry with fresh inputs.
    Reject,
    /// A `prop_assert*!` failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant (used by the assertion macros).
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// The runner's RNG: xoshiro256++ seeded via SplitMix64.
///
/// Seeding is a pure function of the test name, so the suite explores
/// identical inputs on every run — failures reproduce immediately.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn seed_from_u64(state: u64) -> Self {
        let mut x = state;
        let mut split = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [split(), split(), split(), split()],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, span)` (rejection sampling, no modulo bias).
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty draw");
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// FNV-1a, used to derive a per-test seed from its name.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs one property to completion; panics (failing the enclosing
/// `#[test]`) on the first violated case, printing its inputs.
pub fn run_property<V, G, F>(config: &ProptestConfig, name: &str, generate: G, test: F)
where
    V: Clone + std::fmt::Debug,
    G: Fn(&mut TestRng) -> V,
    F: Fn(V) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_from_u64(fnv1a(name));
    let mut passed: u32 = 0;
    let mut rejects: u32 = 0;
    while passed < config.cases {
        let value = generate(&mut rng);
        let saved = value.clone();
        match catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "{name}: too many prop_assume! rejections \
                         ({rejects} rejects for {passed}/{} cases)",
                        config.cases
                    );
                }
            }
            Ok(Err(TestCaseError::Fail(message))) => {
                panic!(
                    "{name}: property falsified after {passed} passing case(s)\n\
                     {message}\n  inputs: {saved:?}"
                );
            }
            Err(payload) => {
                eprintln!(
                    "{name}: case panicked after {passed} passing case(s)\n  inputs: {saved:?}"
                );
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_configured_case_count() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run_property(
            &ProptestConfig::with_cases(17),
            "t::count",
            |rng| rng.below(10),
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        count += counter.get();
        assert_eq!(count, 17);
    }

    #[test]
    fn rejects_do_not_count_as_cases() {
        let accepted = std::cell::Cell::new(0u32);
        run_property(
            &ProptestConfig::with_cases(10),
            "t::reject",
            |rng| rng.below(4),
            |v| {
                if v == 0 {
                    return Err(TestCaseError::Reject);
                }
                accepted.set(accepted.get() + 1);
                Ok(())
            },
        );
        assert_eq!(accepted.get(), 10);
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failure_panics_with_inputs() {
        run_property(
            &ProptestConfig::with_cases(50),
            "t::fail",
            |rng| rng.below(10),
            |v| {
                if v > 5 {
                    return Err(TestCaseError::fail(format!("{v} too big")));
                }
                Ok(())
            },
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let seen = std::cell::RefCell::new(Vec::new());
            run_property(
                &ProptestConfig::with_cases(20),
                "t::det",
                |rng| rng.next_u64(),
                |v| {
                    seen.borrow_mut().push(v);
                    Ok(())
                },
            );
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }
}
