//! Collection strategies: [`vec`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Generates `Vec`s whose lengths fall in `size` (exclusive upper
/// bound) with each element drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_and_element_bounds() {
        let mut rng = TestRng::seed_from_u64(8);
        let s = vec(1usize..12, 1..20);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|&x| (1..12).contains(&x)));
        }
    }

    #[test]
    fn vec_can_be_empty_when_range_allows() {
        let mut rng = TestRng::seed_from_u64(9);
        let s = vec(0u64..5, 0..2);
        let mut saw_empty = false;
        for _ in 0..100 {
            if s.generate(&mut rng).is_empty() {
                saw_empty = true;
            }
        }
        assert!(saw_empty);
    }
}
