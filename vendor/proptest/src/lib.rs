//! Vendored offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace ships a minimal property-testing engine exposing the
//! `proptest 1.x` API subset its tests use: the [`proptest!`] macro,
//! range/tuple/`Vec` strategies, [`Strategy::prop_map`] /
//! [`Strategy::prop_flat_map`] / [`Strategy::boxed`],
//! [`sample::Index`], [`sample::subsequence`] and [`collection::vec`].
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic seeding.** Cases derive from a hash of the test's
//!   module path and name instead of OS entropy, so every run of the
//!   suite explores the same inputs — failures reproduce without a
//!   persistence file.
//! * **No shrinking.** A failing case reports its exact inputs
//!   (`Debug`-formatted) rather than a minimized one. Promote any
//!   failure the engine finds to an explicit regression `#[test]`.
//! * **`.proptest-regressions` files are ignored.** Their `cc` hashes
//!   encode upstream's ChaCha seeds, which this engine cannot replay.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::ProptestConfig;

/// Picks one of several strategies uniformly at random per case.
///
/// Unlike upstream there is no weight syntax (`3 => strat`): every
/// branch is equally likely, which is all the workspace uses.
///
/// ```ignore
/// let small_or_huge = prop_oneof![0u64..10, u64::MAX - 10..u64::MAX];
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategies = ($($strat,)+);
                $crate::test_runner::run_property(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |rng| $crate::strategy::Strategy::generate(&strategies, rng),
                    |__proptest_values| {
                        let ($($pat,)+) = __proptest_values;
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Asserts a condition, failing the case (not the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality with `Debug` output of both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Asserts inequality with `Debug` output of both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} != {}: {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    l
                ),
            ));
        }
    }};
}
