//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Returns the canonical strategy for `Self`.
    fn arbitrary() -> ArbStrategy<Self>;
}

/// Strategy produced by [`any`]: a plain generation function.
pub struct ArbStrategy<T>(fn(&mut TestRng) -> T);

impl<T> ArbStrategy<T> {
    /// Wraps a generation function (used by `Arbitrary` impls).
    pub fn new(f: fn(&mut TestRng) -> T) -> Self {
        ArbStrategy(f)
    }
}

impl<T> Strategy for ArbStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The canonical strategy for `T` — `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> ArbStrategy<T> {
    T::arbitrary()
}

impl Arbitrary for bool {
    fn arbitrary() -> ArbStrategy<bool> {
        ArbStrategy(|rng| rng.next_u64() & 1 == 1)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbStrategy<$t> {
                ArbStrategy(|rng| rng.next_u64() as $t)
            }
        }
    )+};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = any::<bool>();
        let draws: Vec<bool> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}
