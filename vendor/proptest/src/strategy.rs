//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Picks uniformly among several type-erased strategies (the engine
/// behind [`prop_oneof!`](crate::prop_oneof)). Unlike upstream there are
/// no weights: every branch is equally likely.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

/// Each element drawn from the strategy at the same position — lets a
/// `Vec<BoxedStrategy<T>>` act as a strategy for `Vec<T>`.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = (5usize..9).generate(&mut rng);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = (1u64..10).prop_map(|v| v * 2).prop_flat_map(|v| 0..v);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 18);
        }
    }

    #[test]
    fn boxed_and_vec_of_boxed() {
        let mut rng = TestRng::seed_from_u64(3);
        let strategies: Vec<BoxedStrategy<u64>> = (1..5u64).map(|m| (0..m).boxed()).collect();
        let values = strategies.generate(&mut rng);
        assert_eq!(values.len(), 4);
        for (i, &v) in values.iter().enumerate() {
            assert!(v < i as u64 + 1);
        }
    }

    #[test]
    fn tuple_and_just() {
        let mut rng = TestRng::seed_from_u64(4);
        let (a, b, c) = (Just(7u32), 0u64..3, 1usize..2).generate(&mut rng);
        assert_eq!(a, 7);
        assert!(b < 3);
        assert_eq!(c, 1);
    }
}
